"""Memory-access streams of THIIM schedules, at cache-row granularity.

This module turns a stream of :class:`repro.core.wavefront.RowJob` s into
the chunk-access stream the LRU cache simulator consumes.  It is derived
*programmatically* from the kernel specs of :mod:`repro.fdfd.specs`, so
the traffic measurement and the numerics can never drift apart.

Array groups
------------
The 40 domain-sized arrays partition into eight *access-signature groups*:
arrays in one group are touched at exactly the same (dy, dz) offsets by
the same half-step class, so aggregating them into one cache chunk per
(y, z) row is lossless (it only shortens the simulated stream 3x):

* six field pairs -- ``(Exy, Exz)``, ``(Eyx, Eyz)``, ``(Ezx, Ezy)`` and
  the H counterparts; each is written by its own class at (0, 0) and read
  by the other class at the offsets induced by the curl structure;
* two coefficient bundles -- the 14 arrays of the H updates and the 14 of
  the E updates, streamed read-only at (0, 0).

A chunk is one x-row of one group: ``len(group) * 16 * nx`` bytes.

Write counting follows the paper's Section III-A convention (see
:mod:`repro.machine.cache`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from ..fdfd.specs import (
    ALL_COMPONENTS,
    AXIS_Y,
    AXIS_Z,
    BYTES_PER_NUMBER,
    E_COMPONENTS,
    H_COMPONENTS,
    SPECS,
)
from .cache import LRUCache
from .counters import SUBSTRATE_COUNTERS
from ..core.wavefront import RowJob, tile_row_jobs

__all__ = [
    "ArrayGroup",
    "AccessOp",
    "ARRAY_GROUPS",
    "CLASS_RECIPES",
    "ALL_ARRAYS",
    "COMPONENT_RECIPES",
    "StreamEmitter",
    "ComponentStreamEmitter",
    "BatchStreamEmitter",
    "BatchComponentStreamEmitter",
]


@dataclass(frozen=True)
class ArrayGroup:
    """A set of arrays with identical access signature."""

    gid: int
    name: str
    arrays: Tuple[str, ...]

    def row_bytes(self, nx: int) -> int:
        return len(self.arrays) * BYTES_PER_NUMBER * nx


@dataclass(frozen=True)
class AccessOp:
    """One chunk touch per (y, z) cell of a job: group ``gid`` displaced
    by ``(dy, dz)``, read or write."""

    gid: int
    dy: int
    dz: int
    write: bool


def _read_offsets(array: str) -> frozenset[Tuple[int, int]]:
    """All (dy, dz) offsets at which ``array`` is read by the other class."""
    offs = {(0, 0)}  # every pair array is read unshifted by two kernels
    for spec in SPECS.values():
        if array in spec.reads:
            if spec.deriv_axis == AXIS_Y:
                offs.add((spec.shift, 0))
            elif spec.deriv_axis == AXIS_Z:
                offs.add((0, spec.shift))
            # x-axis shifts stay inside the row: no extra chunk touch.
    return frozenset(offs)


def _build_groups() -> Tuple[Tuple[ArrayGroup, ...], Dict[str, ArrayGroup]]:
    """Partition the 40 arrays into access-signature groups."""
    groups: List[ArrayGroup] = []
    by_array: Dict[str, ArrayGroup] = {}

    # Field pairs: the two split parts of one physical component always
    # share a signature (they are read summed).
    pairs: Dict[str, List[str]] = {}
    for name in ALL_COMPONENTS:
        pairs.setdefault(name[:2], []).append(name)
    for phys, arrays in sorted(pairs.items()):
        sig0 = _read_offsets(arrays[0])
        for a in arrays[1:]:
            assert _read_offsets(a) == sig0, f"split pair {phys} signature mismatch"
        g = ArrayGroup(gid=len(groups), name=phys, arrays=tuple(sorted(arrays)))
        groups.append(g)
        for a in arrays:
            by_array[a] = g

    # Coefficient bundles per class.
    for cls, comps in (("H", H_COMPONENTS), ("E", E_COMPONENTS)):
        arrays = tuple(
            sorted(name for c in comps for name in SPECS[c].coeff_names)
        )
        g = ArrayGroup(gid=len(groups), name=f"coeff{cls}", arrays=arrays)
        groups.append(g)
        for a in arrays:
            by_array[a] = g
    return tuple(groups), by_array


def _build_recipes(
    groups: Tuple[ArrayGroup, ...], by_array: Dict[str, ArrayGroup]
) -> Dict[str, Tuple[AccessOp, ...]]:
    """Per half-step class, the deduplicated chunk touches per (y, z)."""
    recipes: Dict[str, Tuple[AccessOp, ...]] = {}
    for cls, comps in (("H", H_COMPONENTS), ("E", E_COMPONENTS)):
        reads: set[Tuple[int, int, int]] = set()
        writes: set[int] = set()
        for comp in comps:
            spec = SPECS[comp]
            own = by_array[comp]
            reads.add((own.gid, 0, 0))  # c * F_old
            writes.add(own.gid)
            for r in spec.reads:
                g = by_array[r]
                reads.add((g.gid, 0, 0))
                if spec.deriv_axis == AXIS_Y:
                    reads.add((g.gid, spec.shift, 0))
                elif spec.deriv_axis == AXIS_Z:
                    reads.add((g.gid, 0, spec.shift))
            cg = by_array[spec.coeff_t]
            reads.add((cg.gid, 0, 0))
        ops: List[AccessOp] = [
            AccessOp(gid, dy, dz, write=False) for gid, dy, dz in sorted(reads)
        ]
        # Reads before writes so a cold own-row charges load + write-back,
        # matching the paper's "own field read and written" counting.
        ops += [AccessOp(gid, 0, 0, write=True) for gid in sorted(writes)]
        recipes[cls] = tuple(ops)
    return recipes


ARRAY_GROUPS, _GROUP_OF = _build_groups()
CLASS_RECIPES = _build_recipes(ARRAY_GROUPS, _GROUP_OF)

# ---------------------------------------------------------------------------
# Per-component recipes at single-array granularity.
#
# The *baseline* code (naive and spatially blocked) runs one loop nest per
# component, exactly like the paper's Listings 1 and 2 -- so arrays shared
# by two components are streamed twice per half step, which is how Eq. 8
# arrives at 1344 bytes/LUP without deduplication.  The tiled kernels, by
# contrast, update all components of a half step while the rows sit in
# cache, which is the fused (group-level) model above.
# ---------------------------------------------------------------------------

#: Stable order of all 40 domain-sized arrays.
ALL_ARRAYS: Tuple[str, ...] = tuple(ALL_COMPONENTS) + tuple(
    sorted(name for s in SPECS.values() for name in s.coeff_names)
)
_ARRAY_INDEX = {name: i for i, name in enumerate(ALL_ARRAYS)}


def _build_component_recipes() -> Dict[str, Tuple[AccessOp, ...]]:
    recipes: Dict[str, Tuple[AccessOp, ...]] = {}
    for comp, spec in SPECS.items():
        ops: List[AccessOp] = []
        # Reads: own old value, the two pair arrays (near + far), coeffs.
        ops.append(AccessOp(_ARRAY_INDEX[comp], 0, 0, write=False))
        for r in spec.reads:
            ops.append(AccessOp(_ARRAY_INDEX[r], 0, 0, write=False))
            if spec.deriv_axis == AXIS_Y:
                ops.append(AccessOp(_ARRAY_INDEX[r], spec.shift, 0, write=False))
            elif spec.deriv_axis == AXIS_Z:
                ops.append(AccessOp(_ARRAY_INDEX[r], 0, spec.shift, write=False))
        for cname in spec.coeff_names:
            ops.append(AccessOp(_ARRAY_INDEX[cname], 0, 0, write=False))
        ops.append(AccessOp(_ARRAY_INDEX[comp], 0, 0, write=True))
        recipes[comp] = tuple(ops)
    return recipes


COMPONENT_RECIPES = _build_component_recipes()


class StreamEmitter:
    """Feeds row-job streams into an LRU cache and accounts LUPs.

    One emitter wraps one shared cache; concurrent thread groups are
    modelled by interleaving their jobs through the same emitter (they
    share the L3).
    """

    def __init__(self, cache: LRUCache, ny: int, nz: int, nx: int):
        if ny < 1 or nz < 1 or nx < 1:
            raise ValueError("ny, nz, nx must be >= 1")
        self.cache = cache
        self.ny = ny
        self.nz = nz
        self.nx = nx
        self._row_bytes = [g.row_bytes(nx) for g in ARRAY_GROUPS]
        self.cells = 0  # (y, z) cell half-updates emitted

    def emit_job(self, job: RowJob) -> None:
        """Replay one row job's chunk accesses."""
        cache = self.cache
        ny, nz = self.ny, self.nz
        nzz = nz
        for op in CLASS_RECIPES[job.field]:
            y0 = max(job.y_lo + op.dy, 0)
            y1 = min(job.y_hi + op.dy, ny)
            z0 = max(job.z_lo + op.dz, 0)
            z1 = min(job.z_hi + op.dz, nz)
            if y0 >= y1 or z0 >= z1:
                continue
            size = self._row_bytes[op.gid]
            write = op.write
            base = op.gid * ny
            for y in range(y0, y1):
                row = (base + y) * nzz
                for z in range(z0, z1):
                    cache.access(row + z, size, write)
        self.cells += job.cells_per_x

    def emit_jobs(self, jobs: Iterable[RowJob]) -> None:
        for job in jobs:
            self.emit_job(job)

    @property
    def lups(self) -> float:
        """Full lattice-site updates emitted (absolute, including x)."""
        return self.cells * self.nx / 2.0


class ComponentStreamEmitter:
    """Single-array-granularity emitter for per-component loop nests.

    Models the baseline code structure: one full sweep per component per
    half step (the paper's Listings), without cross-component fusion.
    ``cells`` counts *component*-row-cells; 12 of them make one LUP per
    x-cell.
    """

    def __init__(self, cache: LRUCache, ny: int, nz: int, nx: int):
        if ny < 1 or nz < 1 or nx < 1:
            raise ValueError("ny, nz, nx must be >= 1")
        self.cache = cache
        self.ny = ny
        self.nz = nz
        self.nx = nx
        self._row_bytes = BYTES_PER_NUMBER * nx
        self.cells = 0

    def emit_component_rows(self, comp: str, y_lo: int, y_hi: int, z_lo: int, z_hi: int) -> None:
        cache = self.cache
        ny, nz = self.ny, self.nz
        size = self._row_bytes
        for op in COMPONENT_RECIPES[comp]:
            y0 = max(y_lo + op.dy, 0)
            y1 = min(y_hi + op.dy, ny)
            z0 = max(z_lo + op.dz, 0)
            z1 = min(z_hi + op.dz, nz)
            if y0 >= y1 or z0 >= z1:
                continue
            base = op.gid * ny
            write = op.write
            for y in range(y0, y1):
                row = (base + y) * nz
                for z in range(z0, z1):
                    cache.access(row + z, size, write)
        self.cells += (y_hi - y_lo) * (z_hi - z_lo)

    @property
    def lups(self) -> float:
        """Full LUPs: 12 component-cell updates each."""
        return self.cells * self.nx / 12.0


# ---------------------------------------------------------------------------
# Batched emitters: signature-memoized packed streams.
#
# The reference emitters above regenerate every chunk key with nested
# Python loops and push them through the cache one call at a time.  But a
# TilingPlan contains thousands of *congruent* jobs -- same half-step
# class, same box extents, same adjacency to the domain edges -- whose
# access streams are identical up to a translation by the job's (y_lo,
# z_lo) anchor (see :meth:`repro.core.wavefront.RowJob.shape_key`).  The
# batched emitters generate the packed relative stream once per shape
# class with NumPy, memoize it, and hand whole segments plus a base
# offset to :meth:`repro.machine.cache.BatchLRU.replay`.  Key order
# inside a segment is exactly the reference loop order (recipe op, then
# y, then z), so the replay is access-for-access identical.
# ---------------------------------------------------------------------------


def _rect_rel_keys(ry0: int, ry1: int, rz0: int, rz1: int, nz: int) -> List[int]:
    """Relative keys ``ry * nz + rz`` of a rectangle, y-major like the
    reference emit loops; a plain list so the replay loop iterates ints."""
    rel = np.arange(ry0, ry1, dtype=np.int64) * nz
    return (rel[:, None] + np.arange(rz0, rz1, dtype=np.int64)[None, :]).ravel().tolist()


#: Generated relative segment lists, shared across emitters: the segments
#: of a shape class depend only on (ny, nz, nx, shape_key), and autotuning
#: sweeps create many emitters over the same simulated domains.
_RAW_SEGMENT_CACHE: Dict[tuple, list] = {}
_RAW_SEGMENT_CACHE_MAX = 1 << 16


class BatchStreamEmitter:
    """Drop-in fast counterpart of :class:`StreamEmitter` over a batched
    replay engine (group granularity, fused half-step recipes)."""

    def __init__(self, cache, ny: int, nz: int, nx: int):
        if ny < 1 or nz < 1 or nx < 1:
            raise ValueError("ny, nz, nx must be >= 1")
        self.cache = cache
        self.ny = ny
        self.nz = nz
        self.nx = nx
        self._row_bytes = [g.row_bytes(nx) for g in ARRAY_GROUPS]
        self.cells = 0
        # shape_key -> (prepared segments, n_accesses); see segments_for().
        # With a job-batching engine the entry is (table_lo, table_hi, n).
        self._memo: Dict[tuple, tuple] = {}
        # tile congruence class -> its whole resolved job stream.
        self._tile_memo: Dict[tuple, tuple] = {}
        self._batched = hasattr(cache, "replay_jobs")

    @staticmethod
    def key_space(ny: int, nz: int) -> int:
        """Upper bound (exclusive) of the dense chunk-key space."""
        return len(ARRAY_GROUPS) * ny * nz

    def raw_segments_for(self, job: RowJob):
        """Unprepared ``(prebase, size, write, rel_keys)`` segments of a
        job (regenerated every call -- the memoized path is emit_job)."""
        ny, nz = self.ny, self.nz
        plane = ny * nz
        segments = []
        for op in CLASS_RECIPES[job.field]:
            y0 = max(job.y_lo + op.dy, 0)
            y1 = min(job.y_hi + op.dy, ny)
            z0 = max(job.z_lo + op.dz, 0)
            z1 = min(job.z_hi + op.dz, nz)
            if y0 >= y1 or z0 >= z1:
                continue
            rel = _rect_rel_keys(y0 - job.y_lo, y1 - job.y_lo,
                                 z0 - job.z_lo, z1 - job.z_lo, nz)
            segments.append((op.gid * plane, self._row_bytes[op.gid], op.write, rel))
        return segments

    def _raw_for_sig(self, sig: tuple, job: RowJob):
        """Raw segments of a shape class, via the cross-emitter cache."""
        key = (self.ny, self.nz, self.nx, sig)
        segs = _RAW_SEGMENT_CACHE.get(key)
        if segs is None:
            if len(_RAW_SEGMENT_CACHE) >= _RAW_SEGMENT_CACHE_MAX:
                _RAW_SEGMENT_CACHE.clear()
            segs = self.raw_segments_for(job)
            _RAW_SEGMENT_CACHE[key] = segs
        return segs

    def segments_for(self, job: RowJob):
        """The prepared packed segments of a job's shape class (memoized)."""
        sig = job.shape_key(self.ny, self.nz)
        hit = self._memo.get(sig)
        if hit is not None:
            SUBSTRATE_COUNTERS.stream_memo_hits += 1
            return hit
        SUBSTRATE_COUNTERS.stream_memo_misses += 1
        segments = self._raw_for_sig(sig, job)
        entry = (self.cache.prepare(segments), sum(len(s[3]) for s in segments))
        self._memo[sig] = entry
        return entry

    def emit_job(self, job: RowJob) -> None:
        """Replay one row job's chunk accesses (batched)."""
        if self._batched:
            self.emit_jobs((job,))
            return
        segments, n = self.segments_for(job)
        self.cache.replay(segments, base=job.y_lo * self.nz + job.z_lo)
        self.cells += job.cells_per_x
        c = SUBSTRATE_COUNTERS
        c.jobs_replayed += 1
        c.accesses_replayed += n

    def emit_jobs(self, jobs: Iterable[RowJob]) -> None:
        if not self._batched:
            emit = self.emit_job
            for job in jobs:
                emit(job)
            return
        # Job-batching engine: resolve every job to its memoized table
        # range + base, then hand the whole batch to one kernel call.
        ny, nz = self.ny, self.nz
        memo = self._memo
        table_add = self.cache.table_add
        lows: List[int] = []
        highs: List[int] = []
        bases: List[int] = []
        total = 0
        cells = 0
        misses = 0
        for job in jobs:
            sig = job.shape_key(ny, nz)
            e = memo.get(sig)
            if e is None:
                misses += 1
                e = table_add(self._raw_for_sig(sig, job))
                memo[sig] = e
            lo, hi, n = e
            lows.append(lo)
            highs.append(hi)
            bases.append(job.y_lo * nz + job.z_lo)
            total += n
            cells += job.cells_per_x
        if lows:
            self.cache.replay_jobs(lows, highs, bases)
        self.cells += cells
        c = SUBSTRATE_COUNTERS
        c.jobs_replayed += len(lows)
        c.accesses_replayed += total
        c.stream_memo_misses += misses
        c.stream_memo_hits += len(lows) - misses

    def _tile_stream(self, tile, bz: int):
        """The tile's whole serialized job stream, resolved to table
        ranges, cached per tile *congruence class*: tiles whose rows agree
        up to a y translation (and in domain-boundary adjacency) produce
        identical job sequences up to the ``y0 * nz`` base shift."""
        ny, nz = self.ny, self.nz
        y0 = min(r.y_lo for r in tile.rows)
        key = (
            bz,
            tuple(
                (r.tau & 1, r.y_lo - y0, r.y_hi - y0, r.y_lo == 0, r.y_hi == ny)
                for r in tile.rows
            ),
        )
        entry = self._tile_memo.get(key)
        if entry is None:
            memo = self._memo
            table_add = self.cache.table_add
            c = SUBSTRATE_COUNTERS
            los: List[int] = []
            his: List[int] = []
            rels: List[int] = []
            total = 0
            cells = 0
            for job in tile_row_jobs(tile, nz, bz):
                sig = job.shape_key(ny, nz)
                e = memo.get(sig)
                if e is None:
                    c.stream_memo_misses += 1
                    e = table_add(self._raw_for_sig(sig, job))
                    memo[sig] = e
                else:
                    c.stream_memo_hits += 1
                lo, hi, n = e
                los.append(lo)
                his.append(hi)
                rels.append((job.y_lo - y0) * nz + job.z_lo)
                total += n
                cells += job.cells_per_x
            entry = (los, his, rels, total, cells)
            self._tile_memo[key] = entry
        else:
            SUBSTRATE_COUNTERS.stream_memo_hits += len(entry[0])
        return entry, y0 * nz

    def emit_tiles_interleaved(self, tiles, bz: int) -> None:
        """Round-robin interleave the job streams of concurrently executing
        tiles (thread groups sharing the L3) and replay them -- in one
        kernel call when the engine supports job batching."""
        if not self._batched:
            streams = [tile_row_jobs(t, self.nz, bz) for t in tiles]
            while streams:
                alive = []
                for s in streams:
                    job = next(s, None)
                    if job is not None:
                        self.emit_job(job)
                        alive.append(s)
                streams = alive
            return
        lows: List[int] = []
        highs: List[int] = []
        bases: List[int] = []
        total = 0
        cells = 0
        alive = []
        for t in tiles:
            (los, his, rels, n, cl), off = self._tile_stream(t, bz)
            total += n
            cells += cl
            if los:
                alive.append((los, his, rels, off, len(los)))
        r = 0
        while alive:
            nxt = []
            for tup in alive:
                los, his, rels, off, length = tup
                lows.append(los[r])
                highs.append(his[r])
                bases.append(off + rels[r])
                if r + 1 < length:
                    nxt.append(tup)
            alive = nxt
            r += 1
        if lows:
            self.cache.replay_jobs(lows, highs, bases)
        self.cells += cells
        c = SUBSTRATE_COUNTERS
        c.jobs_replayed += len(lows)
        c.accesses_replayed += total

    @property
    def lups(self) -> float:
        """Full lattice-site updates emitted (absolute, including x)."""
        return self.cells * self.nx / 2.0


class BatchComponentStreamEmitter:
    """Drop-in fast counterpart of :class:`ComponentStreamEmitter`
    (single-array granularity, per-component loop nests)."""

    def __init__(self, cache, ny: int, nz: int, nx: int):
        if ny < 1 or nz < 1 or nx < 1:
            raise ValueError("ny, nz, nx must be >= 1")
        self.cache = cache
        self.ny = ny
        self.nz = nz
        self.nx = nx
        self._row_bytes = BYTES_PER_NUMBER * nx
        self.cells = 0
        self._memo: Dict[tuple, tuple] = {}

    @staticmethod
    def key_space(ny: int, nz: int) -> int:
        """Upper bound (exclusive) of the dense chunk-key space."""
        return len(ALL_ARRAYS) * ny * nz

    def _segments_for(self, comp: str, y_lo: int, y_hi: int, z_lo: int, z_hi: int):
        ny, nz = self.ny, self.nz
        sig = (comp, y_hi - y_lo, z_hi - z_lo,
               y_lo == 0, y_hi == ny, z_lo == 0, z_hi == nz)
        hit = self._memo.get(sig)
        if hit is not None:
            SUBSTRATE_COUNTERS.stream_memo_hits += 1
            return hit
        SUBSTRATE_COUNTERS.stream_memo_misses += 1
        plane = ny * nz
        size = self._row_bytes
        segments = []
        n = 0
        for op in COMPONENT_RECIPES[comp]:
            y0 = max(y_lo + op.dy, 0)
            y1 = min(y_hi + op.dy, ny)
            z0 = max(z_lo + op.dz, 0)
            z1 = min(z_hi + op.dz, nz)
            if y0 >= y1 or z0 >= z1:
                continue
            rel = _rect_rel_keys(y0 - y_lo, y1 - y_lo, z0 - z_lo, z1 - z_lo, nz)
            segments.append((op.gid * plane, size, op.write, rel))
            n += len(rel)
        entry = (self.cache.prepare(segments), n)
        self._memo[sig] = entry
        return entry

    def emit_component_rows(self, comp: str, y_lo: int, y_hi: int, z_lo: int, z_hi: int) -> None:
        segments, n = self._segments_for(comp, y_lo, y_hi, z_lo, z_hi)
        self.cache.replay(segments, base=y_lo * self.nz + z_lo)
        self.cells += (y_hi - y_lo) * (z_hi - z_lo)
        c = SUBSTRATE_COUNTERS
        c.jobs_replayed += 1
        c.accesses_replayed += n

    @property
    def lups(self) -> float:
        """Full LUPs: 12 component-cell updates each."""
        return self.cells * self.nx / 12.0
