"""Code-balance measurement campaigns (the LIKWID substitute).

Each function replays a *representative steady-state window* of a real
schedule through the LRU model of the shared L3 and reports bytes of main
memory traffic per lattice-site update -- the quantity plotted in Figs. 5c,
6c, 7d and 8d of the paper.

Reduction to a representative window (documented in DESIGN.md):

* **Tiled traversals**: traffic per LUP is periodic in the diamond bands,
  so we build a plan that is ``n_streams`` diamond columns wide (the
  number of concurrently executing thread groups -- they share the L3, so
  their job streams are interleaved round-robin), execute one warm-up
  band, and measure the next bands.  The z extent is shortened to a few
  wavefront widths (steady state along z sets in after one window).
* **Sweeps** (naive / spatially blocked): one warm-up time step, then
  measured time steps, with the real ``ny`` (the layer condition depends
  on it) and a shortened z extent.

Results are memoized: the auto-tuner and the figure benchmarks revisit
the same configurations many times.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, List

from ..core.plan import TilingPlan
from ..core.wavefront import RowJob, tile_row_jobs, wavefront_width
from .cache import LRUCache
from .spec import MachineSpec
from .streams import ComponentStreamEmitter, StreamEmitter

__all__ = [
    "TrafficResult",
    "measure_tiled_code_balance",
    "measure_sweep_code_balance",
]


@dataclass(frozen=True)
class TrafficResult:
    """Outcome of one traffic measurement."""

    mem_bytes: float
    lups: float
    cells: int
    hit_rate: float

    @property
    def bytes_per_lup(self) -> float:
        return self.mem_bytes / self.lups if self.lups else 0.0


def _interleave_band(plan: TilingPlan, band: int) -> Iterator[RowJob]:
    """Round-robin interleave the job streams of one band's tiles,
    emulating concurrent thread groups sharing the L3."""
    streams: List[Iterator[RowJob]] = [
        tile_row_jobs(t, plan.nz, plan.bz) for t in plan.band_tiles(band)
    ]
    while streams:
        alive: List[Iterator[RowJob]] = []
        for s in streams:
            job = next(s, None)
            if job is not None:
                yield job
                alive.append(s)
        streams = alive


@lru_cache(maxsize=4096)
def measure_tiled_code_balance(
    spec: MachineSpec,
    nx: int,
    dw: int,
    bz: int,
    n_streams: int,
    nz_sim: int | None = None,
    measure_bands: int = 2,
) -> TrafficResult:
    """Measured bytes/LUP of a wavefront-diamond schedule.

    Parameters
    ----------
    spec:
        Machine model (provides the effective L3 capacity).
    nx:
        Real inner-dimension extent (sets the row size in bytes -- the
        cache pressure scales with it, Eq. 11).
    dw, bz:
        Diamond width and wavefront block width.
    n_streams:
        Concurrently executing thread groups whose tile streams share the
        cache (``threads // tg_size`` in MWD, ``threads`` in 1WD).
    nz_sim:
        Simulated z extent; defaults to a few wavefront windows.
    """
    if n_streams < 1:
        raise ValueError("n_streams must be >= 1")
    if nz_sim is None:
        nz_sim = max(4 * wavefront_width(dw, bz), 48)
    ny_sim = n_streams * dw
    # Enough steps for one warm-up band plus the measured bands.
    timesteps = max(dw * (measure_bands + 2) // 2, dw)
    plan = TilingPlan.build(ny=ny_sim, nz=nz_sim, timesteps=timesteps, dw=dw, bz=bz)

    cache = LRUCache(spec.usable_l3_bytes)
    emitter = StreamEmitter(cache, ny=ny_sim, nz=nz_sim, nx=nx)
    bands = plan.bands
    warm = bands[0]
    emitter.emit_jobs(_interleave_band(plan, warm))
    cache.reset_stats()
    cells0 = emitter.cells
    for band in bands[1 : 1 + measure_bands]:
        emitter.emit_jobs(_interleave_band(plan, band))
    stats = cache.stats
    cells = emitter.cells - cells0
    return TrafficResult(
        mem_bytes=float(stats.mem_bytes),
        lups=cells * nx / 2.0,
        cells=cells,
        hit_rate=stats.hit_rate,
    )


def _sweep_rows(
    emitter: ComponentStreamEmitter,
    ny: int,
    nz: int,
    timesteps: int,
    block_y: int | None,
    threads: int,
) -> None:
    """Emit the baseline sweep: one loop nest per component per half step
    (the paper's Listings), with ``threads`` static y-slabs interleaved.

    Naive order (``block_y=None``) is z-outer / y-inner: the z-shifted
    far rows are evicted before reuse at large grids.  Spatial blocking
    makes the y-block the outer loop and sweeps z inside it, so a block's
    rows stay resident between consecutive z planes -- the "layer
    condition" of Section III-B.
    """
    from ..fdfd.specs import E_COMPONENTS, H_COMPONENTS

    slab = -(-ny // threads)
    slabs = [(t * slab, min((t + 1) * slab, ny)) for t in range(threads)]
    slabs = [s for s in slabs if s[0] < s[1]]

    def slab_steps(comp: str, y0: int, y1: int):
        if block_y is None:
            for z in range(nz):
                yield (comp, y0, y1, z)
        else:
            for yb in range(y0, y1, block_y):
                ye = min(yb + block_y, y1)
                for z in range(nz):
                    yield (comp, yb, ye, z)

    for _ in range(timesteps):
        for comps in (H_COMPONENTS, E_COMPONENTS):
            for comp in comps:
                streams = [slab_steps(comp, y0, y1) for (y0, y1) in slabs]
                while streams:
                    alive = []
                    for s in streams:
                        item = next(s, None)
                        if item is not None:
                            c, ya, yb_, z = item
                            emitter.emit_component_rows(c, ya, yb_, z, z + 1)
                            alive.append(s)
                    streams = alive


@lru_cache(maxsize=1024)
def measure_sweep_code_balance(
    spec: MachineSpec,
    nx: int,
    ny: int,
    block_y: int | None,
    threads: int = 1,
    nz_sim: int = 12,
    timesteps: int = 3,
) -> TrafficResult:
    """Measured bytes/LUP of the naive or spatially blocked sweep."""
    if threads < 1:
        raise ValueError("threads must be >= 1")
    cache = LRUCache(spec.usable_l3_bytes)
    emitter = ComponentStreamEmitter(cache, ny=ny, nz=nz_sim, nx=nx)
    _sweep_rows(emitter, ny, nz_sim, 1, block_y, threads)
    cache.reset_stats()
    cells0 = emitter.cells
    _sweep_rows(emitter, ny, nz_sim, timesteps - 1, block_y, threads)
    stats = cache.stats
    cells = emitter.cells - cells0
    return TrafficResult(
        mem_bytes=float(stats.mem_bytes),
        lups=cells * nx / 12.0,
        cells=cells,
        hit_rate=stats.hit_rate,
    )
