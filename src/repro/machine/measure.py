"""Code-balance measurement campaigns (the LIKWID substitute).

Each function replays a *representative steady-state window* of a real
schedule through the LRU model of the shared L3 and reports bytes of main
memory traffic per lattice-site update -- the quantity plotted in Figs. 5c,
6c, 7d and 8d of the paper.

Reduction to a representative window (documented in DESIGN.md):

* **Tiled traversals**: traffic per LUP is periodic in the diamond bands,
  so we build a plan that is ``n_streams`` diamond columns wide (the
  number of concurrently executing thread groups -- they share the L3, so
  their job streams are interleaved round-robin), execute one warm-up
  band, and measure the next bands.  The z extent is shortened to a few
  wavefront widths (steady state along z sets in after one window).
* **Sweeps** (naive / spatially blocked): one warm-up time step, then
  measured time steps, with the real ``ny`` (the layer condition depends
  on it) and a shortened z extent.

Results are memoized: the auto-tuner and the figure benchmarks revisit
the same configurations many times.

Replay engines
--------------
Three interchangeable engines produce byte-identical traffic counts
(asserted by the equivalence property tests):

* ``"reference"`` -- the original per-access Python loop
  (:class:`~repro.machine.streams.StreamEmitter` over
  :class:`~repro.machine.cache.LRUCache`); the correctness oracle.
* ``"batch"`` -- signature-memoized packed streams replayed through the
  pure-Python :class:`~repro.machine.cache.BatchLRU`.
* ``"native"`` -- the same packed streams through the compiled kernel of
  :mod:`repro.machine.native` (falls back to ``"batch"`` transparently).

The default ``"auto"`` picks the fastest available; override per call or
process-wide via ``REPRO_STREAM_ENGINE``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, List

from .. import config
from ..core import tracing
from ..core.plan import TilingPlan
from ..core.wavefront import RowJob, tile_row_jobs, wavefront_width
from .cache import BatchLRU, LRUCache
from .counters import timed_section
from .native import make_lru
from .pmu import GLOBAL_PMU, PerfRegion, PerfSample
from .spec import MachineSpec
from .streams import (
    BatchComponentStreamEmitter,
    BatchStreamEmitter,
    ComponentStreamEmitter,
    StreamEmitter,
)

__all__ = [
    "TrafficResult",
    "measure_tiled_code_balance",
    "measure_sweep_code_balance",
    "resolve_engine",
]

ENGINES = ("reference", "batch", "native")


def resolve_engine(engine: str | None = None) -> str:
    """Resolve an engine name (or ``None`` / ``"auto"``) to a concrete one."""
    e = engine or config.stream_engine() or "auto"
    if e == "auto":
        return "native"
    if e not in ENGINES:
        raise ValueError(f"unknown stream engine {e!r}, expected one of {ENGINES}")
    return e


def _make_group_emitter(engine: str, capacity: float, ny: int, nz: int, nx: int):
    if engine == "reference":
        cache = LRUCache(capacity)
        return cache, StreamEmitter(cache, ny=ny, nz=nz, nx=nx)
    if engine == "batch":
        cache = BatchLRU(capacity)
    else:  # native (falls back to BatchLRU when the kernel is unavailable)
        cache = make_lru(capacity, BatchStreamEmitter.key_space(ny, nz))
    return cache, BatchStreamEmitter(cache, ny=ny, nz=nz, nx=nx)


def _make_component_emitter(engine: str, capacity: float, ny: int, nz: int, nx: int):
    if engine == "reference":
        cache = LRUCache(capacity)
        return cache, ComponentStreamEmitter(cache, ny=ny, nz=nz, nx=nx)
    if engine == "batch":
        cache = BatchLRU(capacity)
    else:
        cache = make_lru(capacity, BatchComponentStreamEmitter.key_space(ny, nz))
    return cache, BatchComponentStreamEmitter(cache, ny=ny, nz=nz, nx=nx)


@dataclass(frozen=True)
class TrafficResult:
    """Outcome of one traffic measurement."""

    mem_bytes: float
    lups: float
    cells: int
    hit_rate: float
    #: Full PMU counter sample of the measured phase (all groups); see
    #: :mod:`repro.machine.pmu`.  Compared fields above stay the
    #: authoritative figure inputs; ``perf`` adds the per-event readout.
    perf: PerfSample | None = None

    @property
    def bytes_per_lup(self) -> float:
        return self.mem_bytes / self.lups if self.lups else 0.0


def _interleave_band(plan: TilingPlan, band: int) -> Iterator[RowJob]:
    """Round-robin interleave the job streams of one band's tiles,
    emulating concurrent thread groups sharing the L3."""
    streams: List[Iterator[RowJob]] = [
        tile_row_jobs(t, plan.nz, plan.bz) for t in plan.band_tiles(band)
    ]
    while streams:
        alive: List[Iterator[RowJob]] = []
        for s in streams:
            job = next(s, None)
            if job is not None:
                yield job
                alive.append(s)
        streams = alive


def measure_tiled_code_balance(
    spec: MachineSpec,
    nx: int,
    dw: int,
    bz: int,
    n_streams: int,
    nz_sim: int | None = None,
    measure_bands: int = 2,
    engine: str | None = None,
) -> TrafficResult:
    """Measured bytes/LUP of a wavefront-diamond schedule.

    Parameters
    ----------
    spec:
        Machine model (provides the effective L3 capacity).
    nx:
        Real inner-dimension extent (sets the row size in bytes -- the
        cache pressure scales with it, Eq. 11).
    dw, bz:
        Diamond width and wavefront block width.
    n_streams:
        Concurrently executing thread groups whose tile streams share the
        cache (``threads // tg_size`` in MWD, ``threads`` in 1WD).
    nz_sim:
        Simulated z extent; defaults to a few wavefront windows.
    engine:
        Replay engine (see module docstring); default: fastest available.
    """
    return _measure_tiled_cached(
        spec, nx, dw, bz, n_streams, nz_sim, measure_bands, resolve_engine(engine)
    )


@lru_cache(maxsize=4096)
def _measure_tiled_cached(
    spec: MachineSpec,
    nx: int,
    dw: int,
    bz: int,
    n_streams: int,
    nz_sim: int | None,
    measure_bands: int,
    engine: str,
) -> TrafficResult:
    if n_streams < 1:
        raise ValueError("n_streams must be >= 1")
    if nz_sim is None:
        nz_sim = max(4 * wavefront_width(dw, bz), 48)
    ny_sim = n_streams * dw
    # Enough steps for one warm-up band plus the measured bands.
    timesteps = max(dw * (measure_bands + 2) // 2, dw)
    plan = TilingPlan.build(ny=ny_sim, nz=nz_sim, timesteps=timesteps, dw=dw, bz=bz)

    cache, emitter = _make_group_emitter(
        engine, spec.usable_l3_bytes, ny=ny_sim, nz=nz_sim, nx=nx
    )

    def emit_band(band: int) -> None:
        if hasattr(emitter, "emit_tiles_interleaved"):
            emitter.emit_tiles_interleaved(plan.band_tiles(band), plan.bz)
        else:
            emitter.emit_jobs(_interleave_band(plan, band))

    bands = plan.bands
    region = PerfRegion("measure.tiled")
    with timed_section("measure.tiled"), tracing.span(
        f"measure.tiled dw={dw} bz={bz} nx={nx}", "measure",
        args={"dw": dw, "bz": bz, "nx": nx, "n_streams": n_streams,
              "engine": engine},
    ):
        with tracing.span("warmup band", "measure"):
            emit_band(bands[0])  # warm-up
        cache.reset_stats()
        cells0 = emitter.cells
        with region(cache, emitter), tracing.span("measured bands", "measure"):
            for band in bands[1 : 1 + measure_bands]:
                emit_band(band)
    stats = cache.stats
    cells = emitter.cells - cells0
    GLOBAL_PMU.add_sample("measure.tiled", region.sample)
    return TrafficResult(
        mem_bytes=float(stats.mem_bytes),
        lups=cells * nx / 2.0,
        cells=cells,
        hit_rate=stats.hit_rate,
        perf=region.sample,
    )


def _sweep_rows(
    emitter,
    ny: int,
    nz: int,
    timesteps: int,
    block_y: int | None,
    threads: int,
) -> None:
    """Emit the baseline sweep: one loop nest per component per half step
    (the paper's Listings), with ``threads`` static y-slabs interleaved.

    Naive order (``block_y=None``) is z-outer / y-inner: the z-shifted
    far rows are evicted before reuse at large grids.  Spatial blocking
    makes the y-block the outer loop and sweeps z inside it, so a block's
    rows stay resident between consecutive z planes -- the "layer
    condition" of Section III-B.
    """
    from ..fdfd.specs import E_COMPONENTS, H_COMPONENTS

    slab = -(-ny // threads)
    slabs = [(t * slab, min((t + 1) * slab, ny)) for t in range(threads)]
    slabs = [s for s in slabs if s[0] < s[1]]

    def slab_steps(comp: str, y0: int, y1: int):
        if block_y is None:
            for z in range(nz):
                yield (comp, y0, y1, z)
        else:
            for yb in range(y0, y1, block_y):
                ye = min(yb + block_y, y1)
                for z in range(nz):
                    yield (comp, yb, ye, z)

    for _ in range(timesteps):
        for comps in (H_COMPONENTS, E_COMPONENTS):
            for comp in comps:
                streams = [slab_steps(comp, y0, y1) for (y0, y1) in slabs]
                while streams:
                    alive = []
                    for s in streams:
                        item = next(s, None)
                        if item is not None:
                            c, ya, yb_, z = item
                            emitter.emit_component_rows(c, ya, yb_, z, z + 1)
                            alive.append(s)
                    streams = alive


def measure_sweep_code_balance(
    spec: MachineSpec,
    nx: int,
    ny: int,
    block_y: int | None,
    threads: int = 1,
    nz_sim: int = 12,
    timesteps: int = 3,
    engine: str | None = None,
) -> TrafficResult:
    """Measured bytes/LUP of the naive or spatially blocked sweep."""
    return _measure_sweep_cached(
        spec, nx, ny, block_y, threads, nz_sim, timesteps, resolve_engine(engine)
    )


@lru_cache(maxsize=1024)
def _measure_sweep_cached(
    spec: MachineSpec,
    nx: int,
    ny: int,
    block_y: int | None,
    threads: int,
    nz_sim: int,
    timesteps: int,
    engine: str,
) -> TrafficResult:
    if threads < 1:
        raise ValueError("threads must be >= 1")
    cache, emitter = _make_component_emitter(
        engine, spec.usable_l3_bytes, ny=ny, nz=nz_sim, nx=nx
    )
    region = PerfRegion("measure.sweep")
    with timed_section("measure.sweep"), tracing.span(
        f"measure.sweep by={block_y} nx={nx}", "measure",
        args={"nx": nx, "ny": ny, "block_y": block_y, "threads": threads,
              "engine": engine},
    ):
        with tracing.span("warmup step", "measure"):
            _sweep_rows(emitter, ny, nz_sim, 1, block_y, threads)
        cache.reset_stats()
        cells0 = emitter.cells
        with region(cache, emitter), tracing.span("measured steps", "measure"):
            _sweep_rows(emitter, ny, nz_sim, timesteps - 1, block_y, threads)
    stats = cache.stats
    cells = emitter.cells - cells0
    GLOBAL_PMU.add_sample("measure.sweep", region.sample)
    return TrafficResult(
        mem_bytes=float(stats.mem_bytes),
        lups=cells * nx / 12.0,
        cells=cells,
        hit_rate=stats.hit_rate,
        perf=region.sample,
    )
