"""Discrete-event execution simulator for the multicore machine model.

This is the substitute for running OpenMP threads on the Haswell socket:
thread groups pop diamond tiles from the FIFO dependency queue and process
them at rates governed by an ECM-style single-thread model plus a shared
memory-bandwidth resource.

Rate model (per thread group ``i`` executing a tile):

* *In-core / in-cache term*: one LUP costs ``t_core * tiled_overhead``
  seconds of single-thread work; the group's ``s`` threads share it with
  the intra-tile efficiency of its :class:`ThreadGroupConfig` (x-chunk
  pipeline efficiency, component-imbalance, wavefront fill/drain), plus
  explicit synchronization costs per wavefront front.
* *Memory term*: the tile moves ``B_c`` bytes/LUP (measured by the cache
  simulator); a single core can draw at most ``core_bandwidth_gbs``, and
  the in-core and transfer contributions do not overlap (the non-overlap
  assumption of the ECM model on Haswell), giving the group's standalone
  rate cap::

      P_i = s * eff / (t_core * ov + B_c / (core_bw * s * eff))   [LUP/s]

  -- equivalently each thread runs at ``1 / (t_core*ov + B_c/core_bw)``.
* *Socket bandwidth*: the groups' aggregate demand ``sum(rate_i * B_c)``
  is capped at ``bandwidth_gbs`` by water-filling: groups that need less
  than their fair share keep their cap, the rest split the remainder.
  Spatial blocking saturates here at ~6 cores (Fig. 6); MWD's low code
  balance never does.

The DES advances from tile completion to tile completion, recomputing the
water-filled rates at each event, so ramp-up (few ready tiles), drain and
dependency stalls appear mechanistically in the aggregate MLUP/s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core import tracing
from ..core.plan import TileIndex, TilingPlan
from ..core.queue import TileQueue
from ..core.threadgroups import ThreadGroupConfig
from ..fdfd.specs import component_groups, flops_for_component, E_COMPONENTS, H_COMPONENTS
from .spec import MachineSpec

__all__ = ["SimResult", "tg_efficiency", "simulate_tiled", "simulate_sweep"]


@dataclass(frozen=True)
class SimResult:
    """Aggregate outcome of one simulated run."""

    mlups: float
    bandwidth_gbs: float
    bytes_per_lup: float
    seconds: float
    lups: float
    threads: int
    label: str = ""

    def scaled_to(self, lups: float) -> "SimResult":
        """The same steady-state rates applied to a different problem
        volume (used to report full-grid numbers from a windowed sim)."""
        factor = lups / self.lups if self.lups else 0.0
        return SimResult(
            mlups=self.mlups,
            bandwidth_gbs=self.bandwidth_gbs,
            bytes_per_lup=self.bytes_per_lup,
            seconds=self.seconds * factor,
            lups=lups,
            threads=self.threads,
            label=self.label,
        )


def _component_imbalance(n_c: int) -> float:
    """Max/mean flops over the component groups (>= 1)."""
    groups = component_groups(n_c)
    h_flops = [flops_for_component(c) for c in H_COMPONENTS]
    loads = [sum(h_flops[i] for i in g) for g in groups]
    return max(loads) / (sum(loads) / len(loads))


def tg_efficiency(cfg: ThreadGroupConfig, nx: int, nz: int, bz: int) -> float:
    """Intra-tile parallel efficiency of a thread-group configuration.

    Three multiplicative factors, one per intra-tile dimension:

    * x: load imbalance of the ceil-division chunks times a short-loop
      pipeline factor ``chunk / (chunk + 12)`` (long contiguous inner
      loops are what hardware prefetching and SIMD pipelines want --
      Section VI's "thin domain" discussion);
    * components: flop imbalance of the 1/2/3/6-way split;
    * wavefront: fill/drain of the ``n_wf``-stage pipeline along z.
    """
    chunk = cfg.x_chunk(nx)
    eff_x = (1.0 / cfg.imbalance(nx)) * (chunk / (chunk + 12.0))
    eff_c = 1.0 / _component_imbalance(cfg.component_threads)
    if cfg.wavefront_threads > 1:
        fill = (cfg.wavefront_threads - 1) * bz
        eff_w = nz / (nz + fill)
    else:
        eff_w = 1.0
    return eff_x * eff_c * eff_w


def _water_fill(demands: Sequence[float], caps: Sequence[float], bandwidth: float) -> List[float]:
    """Allocate rates (LUP/s) under a shared byte budget.

    ``caps`` are standalone rate caps, ``demands`` the bytes/LUP of each
    group.  Returns achieved rates with ``sum(rate*demand) <= bandwidth``.
    """
    n = len(caps)
    rates = [0.0] * n
    remaining = bandwidth
    active = [i for i in range(n)]
    while active:
        # Fair byte share of the remaining budget.
        share = remaining / len(active)
        unconstrained = [i for i in active if caps[i] * demands[i] <= share + 1e-9]
        if unconstrained:
            for i in unconstrained:
                rates[i] = caps[i]
                remaining -= caps[i] * demands[i]
            active = [i for i in active if i not in unconstrained]
            continue
        for i in active:
            rates[i] = share / demands[i] if demands[i] > 0 else caps[i]
        active = []
    return rates


@dataclass
class _RunningTile:
    group: int
    work_lups: float
    remaining_lups: float
    bytes_per_lup: float
    overhead_s: float  # fixed per-tile cost (sync + queue), paid up front
    key: TileIndex
    start_s: float = 0.0  # simulated dispatch time (trace timeline)


def simulate_tiled(
    spec: MachineSpec,
    plan: TilingPlan,
    nx: int,
    tg_config: ThreadGroupConfig,
    code_balance: float,
    label: str = "",
) -> SimResult:
    """Run the MWD/1WD protocol through the DES.

    ``code_balance`` is the measured bytes/LUP for this configuration
    (from :func:`repro.machine.measure.measure_tiled_code_balance`);
    ``plan`` provides the tile DAG and sizes.  The number of concurrent
    groups is ``spec.cores // tg_config.size``.
    """
    s = tg_config.size
    if s > spec.cores:
        raise ValueError(f"thread group of {s} exceeds {spec.cores} cores")
    n_groups = spec.cores // s
    eff = tg_efficiency(tg_config, nx=nx, nz=plan.nz, bz=plan.bz)
    t_core = spec.t_lup_core_ns * 1e-9 * spec.tiled_overhead
    per_thread = t_core + code_balance / (spec.core_bandwidth_gbs * 1e9)
    cap_rate = s * eff / per_thread  # LUP/s standalone

    # Fixed per-tile overheads: queue critical region + per-front syncs.
    sync = spec.sync_ns * 1e-9

    queue = TileQueue(plan)
    running: List[_RunningTile] = []
    idle_groups = list(range(n_groups))
    now = 0.0
    total_lups = 0.0
    total_bytes = 0.0

    # One trace process per simulation: thread lanes are the concurrent
    # thread groups, timestamps are *simulated* seconds (as microseconds).
    rec = tracing.active()
    sim_pid = 0
    if rec is not None:
        sim_pid = rec.new_process(
            f"DES {label or f'{n_groups}x{tg_config.label()}'} "
            f"ny={plan.ny} nz={plan.nz} nx={nx}"
        )
        for g in range(n_groups):
            rec.name_thread(sim_pid, g, f"thread group {g} ({s} threads)")

    fronts_z = -(-plan.nz // plan.bz)

    def tile_overhead(idx: TileIndex) -> float:
        # level_offsets yields one entry per row, so its length is just
        # the row count -- no need to materialize the offsets here.
        fronts = fronts_z + len(plan.tiles[idx].rows)
        syncs = fronts if s > 1 else 0
        return sync * (2 + syncs)

    while not queue.exhausted:
        # Dispatch ready tiles to idle groups.
        while idle_groups and len(queue):
            idx = queue.pop()
            g = idle_groups.pop()
            tile = plan.tiles[idx]
            lups = tile.lups * nx
            running.append(
                _RunningTile(
                    group=g,
                    work_lups=lups,
                    remaining_lups=lups,
                    bytes_per_lup=code_balance,
                    overhead_s=tile_overhead(idx),
                    key=idx,
                    start_s=now,
                )
            )
        if not running:
            raise RuntimeError("deadlock: no running tiles but queue not exhausted")

        # Every running tile has the same cap and bytes/LUP here, so the
        # general water-fill reduces to one comparison producing the exact
        # same floats: all capped, or all at the fair byte share.
        share = spec.bandwidth_gbs * 1e9 / len(running)
        if cap_rate * code_balance <= share + 1e-9:
            rate = cap_rate
        else:
            rate = share / code_balance if code_balance > 0 else cap_rate

        # Next completion: overhead is modelled as a rate-independent
        # prefix folded into the remaining time.
        dt = min(rt.overhead_s + rt.remaining_lups / rate for rt in running)
        now += dt
        finished: List[int] = []
        for k, rt in enumerate(running):
            if rt.overhead_s >= dt:
                rt.overhead_s -= dt
                continue
            progress = (dt - rt.overhead_s) * rate
            rt.overhead_s = 0.0
            rt.remaining_lups -= progress
            total_lups += progress
            total_bytes += progress * rt.bytes_per_lup
            if rt.remaining_lups <= 1e-6:
                finished.append(k)
        for k in reversed(finished):
            rt = running.pop(k)
            idle_groups.append(rt.group)
            queue.complete(rt.key)
            if rec is not None:
                t, r = rt.key
                rec.complete(
                    f"tile t={t} r={r}", "sim.tile",
                    ts_us=rt.start_s * 1e6, dur_us=(now - rt.start_s) * 1e6,
                    pid=sim_pid, tid=rt.group,
                    args={"lups": rt.work_lups, "bytes_per_lup": rt.bytes_per_lup},
                )

    mlups = total_lups / now / 1e6 if now > 0 else 0.0
    gbs = total_bytes / now / 1e9 if now > 0 else 0.0
    return SimResult(
        mlups=mlups,
        bandwidth_gbs=gbs,
        bytes_per_lup=code_balance,
        seconds=now,
        lups=total_lups,
        threads=spec.cores,
        label=label or f"{n_groups}x{tg_config.label()}",
    )


def simulate_sweep(
    spec: MachineSpec,
    threads: int,
    code_balance: float,
    lups: float,
    label: str = "",
) -> SimResult:
    """Closed-form model for the naive / spatially blocked sweep.

    All threads run identical full-domain streams, so the DES collapses
    to ``rate = min(threads * r_1, BW / B_c)`` with the ECM single-thread
    rate ``r_1 = 1 / (t_core + B_c / core_bw)``.
    """
    if threads < 1 or threads > spec.cores:
        raise ValueError(f"threads must be in [1, {spec.cores}]")
    if code_balance <= 0 or lups <= 0:
        raise ValueError("code balance and lups must be positive")
    t_core = spec.t_lup_core_ns * 1e-9
    r1 = 1.0 / (t_core + code_balance / (spec.core_bandwidth_gbs * 1e9))
    rate = min(threads * r1, spec.bandwidth_gbs * 1e9 / code_balance)
    seconds = lups / rate
    return SimResult(
        mlups=rate / 1e6,
        bandwidth_gbs=rate * code_balance / 1e9,
        bytes_per_lup=code_balance,
        seconds=seconds,
        lups=lups,
        threads=threads,
        label=label or f"sweep x{threads}",
    )
