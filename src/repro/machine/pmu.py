"""Simulated performance-monitoring unit (the likwid-perfctr substitute).

The paper establishes its headline claims (38-80% memory-traffic savings,
code balance matching Eq. 12) with likwid-perfctr hardware counter groups
on the Haswell socket.  This module gives the simulated machine the same
observability surface: *counter groups* read out of the LRU cache model
and the stream-replay engines, exposed through a marker-region API
modeled on ``LIKWID_MARKER_START`` / ``LIKWID_MARKER_STOP``.

Counter groups
--------------
``MEM``
    Bytes in and out of the modeled main memory, and the derived code
    balance in bytes per lattice-site update -- the quantity of Figs.
    5c/6c/7d/8d.
``CACHE``
    Hit/miss/write-back event counts of the modeled shared L3 (the one
    cache level the substrate simulates) plus the resident working set.
``WORK``
    Cell half-updates, LUPs, and retired flops at
    :data:`repro.fdfd.specs.FLOPS_PER_LUP` flops per LUP.

Every replay engine -- the reference per-access :class:`~repro.machine.
cache.LRUCache`, the batched :class:`~repro.machine.cache.BatchLRU`, and
the compiled :class:`~repro.machine.native.NativeLRU` -- exposes the same
``stats`` / ``used_bytes`` surface with byte-identical accounting, so a
:class:`PerfRegion` wrapped around any of them reports identical group
values (asserted by ``tests/test_pmu.py``).

Usage, likwid marker style::

    pmu = PMU()
    with pmu.region("steady-state", cache, emitter):
        emitter.emit_tiles_interleaved(plan.band_tiles(b), plan.bz)
    print(pmu.report(groups=("MEM", "CACHE")))

The measurement campaigns of :mod:`repro.machine.measure` run their
measured phase inside such a region and attach the resulting
:class:`PerfSample` to every :class:`~repro.machine.measure.TrafficResult`,
feeding the process-global :data:`GLOBAL_PMU` (surfaced by ``repro
counters`` and the ``--perf-group`` CLI flags).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..fdfd.specs import FLOPS_PER_LUP

__all__ = [
    "PerfGroup",
    "PerfSample",
    "PerfRegion",
    "PMU",
    "PERF_GROUPS",
    "GLOBAL_PMU",
    "resolve_groups",
]


@dataclass(frozen=True)
class PerfGroup:
    """A named set of events + derived metrics (a likwid counter group)."""

    name: str
    title: str
    events: Tuple[str, ...]
    metrics: Tuple[str, ...]


#: The three counter groups of the simulated PMU, keyed likwid-style.
PERF_GROUPS: Dict[str, PerfGroup] = {
    "MEM": PerfGroup(
        name="MEM",
        title="Main memory traffic",
        events=("DRAM_READ_BYTES", "DRAM_WRITE_BYTES"),
        metrics=(
            "Memory read data volume [MByte]",
            "Memory write data volume [MByte]",
            "Memory data volume [MByte]",
            "Code balance [B/LUP]",
        ),
    ),
    "CACHE": PerfGroup(
        name="CACHE",
        title="Shared L3 cache (the one simulated level)",
        events=(
            "L3_READ_HITS",
            "L3_READ_MISSES",
            "L3_WRITE_HITS",
            "L3_WRITE_MISSES",
            "L3_EVICT_WRITEBACKS",
            "L3_RESIDENT_BYTES",
        ),
        metrics=("L3 accesses", "L3 hit rate", "L3 resident set [MiB]"),
    ),
    "WORK": PerfGroup(
        name="WORK",
        title="Lattice-site update work",
        events=("CELL_UPDATES", "LUPS", "RETIRED_FLOPS"),
        metrics=("Flops per LUP", "Region calls"),
    ),
}


def resolve_groups(selector: str | Sequence[str] | None) -> Tuple[str, ...]:
    """Normalize a group selector (``"MEM"``, ``"MEM,CACHE"``, ``"ALL"``,
    a sequence, or ``None`` for all) to canonical group names."""
    if selector is None:
        return tuple(PERF_GROUPS)
    if isinstance(selector, str):
        selector = selector.split(",")
    out: List[str] = []
    for g in selector:
        g = g.strip().upper()
        if g == "ALL":
            return tuple(PERF_GROUPS)
        if g not in PERF_GROUPS:
            raise ValueError(
                f"unknown perf group {g!r}, expected one of {tuple(PERF_GROUPS)}"
            )
        if g not in out:
            out.append(g)
    return tuple(out)


def _stats_tuple(cache) -> Tuple[int, ...]:
    """Point-in-time copy of an engine's seven counter fields (the live
    ``CacheStats`` of the Python engines mutates in place)."""
    s = cache.stats
    return (
        s.read_hits,
        s.read_misses,
        s.write_hits,
        s.write_misses,
        s.writebacks,
        s.mem_read_bytes,
        s.mem_write_bytes,
    )


@dataclass(frozen=True)
class PerfSample:
    """One region's accumulated counter values (all groups at once).

    The simulated PMU has no multiplexing: unlike real hardware, every
    group is available from a single run, so a sample carries the union
    of the three groups' raw events.
    """

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    writebacks: int = 0
    mem_read_bytes: int = 0
    mem_write_bytes: int = 0
    #: Resident bytes at region close (max over calls, not a sum).
    resident_bytes: int = 0
    #: Emitter cell half-updates (engine-specific granularity).
    cells: int = 0
    #: Full lattice-site updates.
    lups: float = 0.0
    #: Marker region enter/exit pairs accumulated into this sample.
    calls: int = 0

    # -- derived metrics -----------------------------------------------------

    @property
    def mem_bytes(self) -> int:
        return self.mem_read_bytes + self.mem_write_bytes

    @property
    def accesses(self) -> int:
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def hit_rate(self) -> float:
        n = self.accesses
        return 1.0 if n == 0 else (self.read_hits + self.write_hits) / n

    @property
    def code_balance(self) -> float:
        """Measured bytes per LUP (the likwid 'data volume / LUPs')."""
        return self.mem_bytes / self.lups if self.lups else 0.0

    @property
    def flops(self) -> float:
        return self.lups * FLOPS_PER_LUP

    # -- construction / combination ------------------------------------------

    @staticmethod
    def from_deltas(
        stats_before: Tuple[int, ...],
        stats_after: Tuple[int, ...],
        cells: int,
        lups: float,
        resident_bytes: int,
    ) -> "PerfSample":
        d = tuple(a - b for a, b in zip(stats_after, stats_before))
        return PerfSample(
            read_hits=d[0],
            read_misses=d[1],
            write_hits=d[2],
            write_misses=d[3],
            writebacks=d[4],
            mem_read_bytes=d[5],
            mem_write_bytes=d[6],
            resident_bytes=resident_bytes,
            cells=cells,
            lups=lups,
            calls=1,
        )

    def merged(self, other: "PerfSample") -> "PerfSample":
        """Accumulate another sample (counter sums; resident is a max)."""
        return PerfSample(
            read_hits=self.read_hits + other.read_hits,
            read_misses=self.read_misses + other.read_misses,
            write_hits=self.write_hits + other.write_hits,
            write_misses=self.write_misses + other.write_misses,
            writebacks=self.writebacks + other.writebacks,
            mem_read_bytes=self.mem_read_bytes + other.mem_read_bytes,
            mem_write_bytes=self.mem_write_bytes + other.mem_write_bytes,
            resident_bytes=max(self.resident_bytes, other.resident_bytes),
            cells=self.cells + other.cells,
            lups=self.lups + other.lups,
            calls=self.calls + other.calls,
        )

    # -- readout ---------------------------------------------------------------

    def event(self, name: str) -> float:
        """Raw event value by its group-table name."""
        table = {
            "DRAM_READ_BYTES": self.mem_read_bytes,
            "DRAM_WRITE_BYTES": self.mem_write_bytes,
            "L3_READ_HITS": self.read_hits,
            "L3_READ_MISSES": self.read_misses,
            "L3_WRITE_HITS": self.write_hits,
            "L3_WRITE_MISSES": self.write_misses,
            "L3_EVICT_WRITEBACKS": self.writebacks,
            "L3_RESIDENT_BYTES": self.resident_bytes,
            "CELL_UPDATES": self.cells,
            "LUPS": self.lups,
            "RETIRED_FLOPS": self.flops,
        }
        return table[name]

    def metric(self, name: str) -> float:
        table = {
            "Memory read data volume [MByte]": self.mem_read_bytes / 1e6,
            "Memory write data volume [MByte]": self.mem_write_bytes / 1e6,
            "Memory data volume [MByte]": self.mem_bytes / 1e6,
            "Code balance [B/LUP]": self.code_balance,
            "L3 accesses": self.accesses,
            "L3 hit rate": self.hit_rate,
            "L3 resident set [MiB]": self.resident_bytes / 2**20,
            "Flops per LUP": FLOPS_PER_LUP,
            "Region calls": self.calls,
        }
        return table[name]

    def group_values(self, group: str) -> Dict[str, float]:
        """Events + metrics of one group as a flat dict (tests, JSON)."""
        g = PERF_GROUPS[group]
        out: Dict[str, float] = {e: self.event(e) for e in g.events}
        out.update({m: self.metric(m) for m in g.metrics})
        return out

    def to_dict(self) -> Dict[str, object]:
        d = {f.name: getattr(self, f.name) for f in fields(self)}
        d["derived"] = {
            "mem_bytes": self.mem_bytes,
            "accesses": self.accesses,
            "hit_rate": self.hit_rate,
            "code_balance_B_per_LUP": self.code_balance,
            "flops": self.flops,
        }
        return d


class PerfRegion:
    """A named marker region accumulating :class:`PerfSample` deltas.

    Modeled on likwid marker regions: a region may be entered many times
    (the sample accumulates and counts calls) and nests safely -- each
    enter snapshots independently, so overlapping enters of the *same*
    region object simply accumulate both deltas.
    """

    __slots__ = ("name", "sample", "_stack")

    def __init__(self, name: str):
        self.name = name
        self.sample = PerfSample()
        self._stack: List[tuple] = []

    def start(self, cache, emitter) -> None:
        self._stack.append((cache, emitter, _stats_tuple(cache), emitter.cells, emitter.lups))

    def stop(self) -> PerfSample:
        """Close the innermost open marker; returns this call's delta."""
        if not self._stack:
            raise RuntimeError(f"perf region {self.name!r} stopped but never started")
        cache, emitter, stats0, cells0, lups0 = self._stack.pop()
        delta = PerfSample.from_deltas(
            stats0,
            _stats_tuple(cache),
            cells=emitter.cells - cells0,
            lups=emitter.lups - lups0,
            resident_bytes=cache.used_bytes,
        )
        self.sample = self.sample.merged(delta)
        return delta

    @contextmanager
    def __call__(self, cache, emitter):
        self.start(cache, emitter)
        try:
            yield self
        finally:
            self.stop()


class PMU:
    """A set of named marker regions plus likwid-style reporting."""

    def __init__(self):
        self.regions: Dict[str, PerfRegion] = {}

    def __contains__(self, name: str) -> bool:
        return name in self.regions

    def __getitem__(self, name: str) -> PerfRegion:
        return self.regions[name]

    def _region(self, name: str) -> PerfRegion:
        r = self.regions.get(name)
        if r is None:
            r = self.regions[name] = PerfRegion(name)
        return r

    @contextmanager
    def region(self, name: str, cache, emitter):
        """Marker-region context: counts the enclosed replay traffic."""
        r = self._region(name)
        r.start(cache, emitter)
        try:
            yield r
        finally:
            r.stop()

    def add_sample(self, name: str, sample: PerfSample) -> None:
        """Fold an externally captured sample into a named region."""
        r = self._region(name)
        r.sample = r.sample.merged(sample)

    def sample(self, name: str) -> PerfSample:
        return self.regions[name].sample

    def reset(self) -> None:
        self.regions.clear()

    # -- reporting -------------------------------------------------------------

    @staticmethod
    def _fmt(v: float) -> str:
        if isinstance(v, float) and not v.is_integer():
            return f"{v:.4f}" if abs(v) < 100 else f"{v:,.1f}"
        return f"{int(v):,}"

    def _group_table(self, region: PerfRegion, group: PerfGroup) -> str:
        rows: List[Tuple[str, str]] = [(e, self._fmt(region.sample.event(e)))
                                       for e in group.events]
        rows += [(m, self._fmt(region.sample.metric(m))) for m in group.metrics]
        wname = max(len("Event/Metric"), *(len(r[0]) for r in rows))
        wval = max(len("Value"), *(len(r[1]) for r in rows))
        bar = f"+-{'-' * wname}-+-{'-' * wval}-+"
        head = f"Region {region.name}, Group {group.name}: {group.title}"
        lines = ["-" * max(len(head), len(bar)), head, "-" * max(len(head), len(bar)),
                 bar, f"| {'Event/Metric'.ljust(wname)} | {'Value'.rjust(wval)} |", bar]
        for name, val in rows:
            lines.append(f"| {name.ljust(wname)} | {val.rjust(wval)} |")
        lines.append(bar)
        return "\n".join(lines)

    def report(
        self,
        groups: str | Sequence[str] | None = None,
        regions: Iterable[str] | None = None,
    ) -> str:
        """likwid-perfctr-style readout of marker regions x counter groups."""
        names = list(regions) if regions is not None else list(self.regions)
        gsel = resolve_groups(groups)
        if not names:
            return "(no perf regions recorded)"
        blocks: List[str] = []
        for name in names:
            region = self.regions[name]
            for g in gsel:
                blocks.append(self._group_table(region, PERF_GROUPS[g]))
        return "\n\n".join(blocks)

    def to_json(self) -> Dict[str, Mapping[str, object]]:
        return {name: r.sample.to_dict() for name, r in self.regions.items()}


#: Process-global PMU: the measurement campaigns feed it, the CLI
#: ``--perf-group`` flags and ``repro counters`` read it.
GLOBAL_PMU = PMU()
