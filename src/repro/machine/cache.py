"""LRU cache simulator (the stand-in for LIKWID's memory counters).

The paper *measures* its code balance via hardware performance counters:
bytes moved between the L3 and main memory, divided by lattice-site
updates.  Our substitute replays the memory-access stream of the actual
schedule through an LRU model of the shared L3 and counts the same two
quantities.

Granularity
-----------
The unit of caching is one x-row of one *array group* at a given (y, z) --
see :mod:`repro.machine.streams` for the exact grouping.  The x dimension
is never tiled (its rows stream contiguously through the cache), so row
granularity captures precisely the reuse structure that the blocking
parameters control; this is the same abstraction level as the paper's
Eqs. 8-12.

Write counting follows the paper's convention (Section III-A): a store
costs one memory transfer (the eventual write-back); write misses do not
charge a read (no RFO / streaming-store assumption, matching Eq. 8's "18
numbers = 2 written + 16 read").
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = ["CacheStats", "LRUCache"]


@dataclass
class CacheStats:
    """Byte and event counters accumulated by the cache simulator."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    writebacks: int = 0
    mem_read_bytes: int = 0
    mem_write_bytes: int = 0

    @property
    def mem_bytes(self) -> int:
        """Total main-memory traffic (the LIKWID "data volume")."""
        return self.mem_read_bytes + self.mem_write_bytes

    @property
    def accesses(self) -> int:
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def hit_rate(self) -> float:
        n = self.accesses
        return 1.0 if n == 0 else (self.read_hits + self.write_hits) / n


class LRUCache:
    """A capacity-managed LRU cache over variable-size chunks.

    Keys are opaque integers; each access carries the chunk's byte size
    (constant per chunk kind).  Dirty chunks charge a write-back when
    evicted or flushed.
    """

    __slots__ = ("capacity_bytes", "stats", "_entries", "_used_bytes")

    def __init__(self, capacity_bytes: float):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = float(capacity_bytes)
        self.stats = CacheStats()
        # key -> [size, dirty]
        self._entries: OrderedDict[int, list] = OrderedDict()
        self._used_bytes = 0

    # -- properties ---------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    # -- the hot path ---------------------------------------------------------

    def access(self, key: int, size: int, write: bool) -> bool:
        """Touch a chunk; returns True on hit."""
        entries = self._entries
        entry = entries.get(key)
        stats = self.stats
        if entry is not None:
            entries.move_to_end(key)
            if write:
                entry[1] = True
                stats.write_hits += 1
            else:
                stats.read_hits += 1
            return True
        # Miss: install (write misses charge only the eventual write-back,
        # read misses charge the memory read now).
        if write:
            stats.write_misses += 1
        else:
            stats.read_misses += 1
            stats.mem_read_bytes += size
        entries[key] = [size, write]
        self._used_bytes += size
        while self._used_bytes > self.capacity_bytes:
            _, (esize, dirty) = entries.popitem(last=False)
            self._used_bytes -= esize
            if dirty:
                stats.writebacks += 1
                stats.mem_write_bytes += esize
        return False

    def access_many(self, keys, size: int, write: bool) -> None:
        """Touch a sequence of chunks of uniform size."""
        for key in keys:
            self.access(key, size, write)

    # -- management ---------------------------------------------------------

    def flush(self) -> None:
        """Write back all dirty chunks and empty the cache."""
        for _, (size, dirty) in self._entries.items():
            if dirty:
                self.stats.writebacks += 1
                self.stats.mem_write_bytes += size
        self._entries.clear()
        self._used_bytes = 0

    def reset_stats(self) -> CacheStats:
        """Return current stats and start a fresh counter epoch (cache
        contents are kept -- used to discard warm-up traffic)."""
        old = self.stats
        self.stats = CacheStats()
        return old
