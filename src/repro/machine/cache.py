"""LRU cache simulator (the stand-in for LIKWID's memory counters).

The paper *measures* its code balance via hardware performance counters:
bytes moved between the L3 and main memory, divided by lattice-site
updates.  Our substitute replays the memory-access stream of the actual
schedule through an LRU model of the shared L3 and counts the same two
quantities.

Granularity
-----------
The unit of caching is one x-row of one *array group* at a given (y, z) --
see :mod:`repro.machine.streams` for the exact grouping.  The x dimension
is never tiled (its rows stream contiguously through the cache), so row
granularity captures precisely the reuse structure that the blocking
parameters control; this is the same abstraction level as the paper's
Eqs. 8-12.

Write counting follows the paper's convention (Section III-A): a store
costs one memory transfer (the eventual write-back); write misses do not
charge a read (no RFO / streaming-store assumption, matching Eq. 8's "18
numbers = 2 written + 16 read").
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = ["CacheStats", "LRUCache", "BatchLRU"]


@dataclass
class CacheStats:
    """Byte and event counters accumulated by the cache simulator."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    writebacks: int = 0
    mem_read_bytes: int = 0
    mem_write_bytes: int = 0

    @property
    def mem_bytes(self) -> int:
        """Total main-memory traffic (the LIKWID "data volume")."""
        return self.mem_read_bytes + self.mem_write_bytes

    @property
    def accesses(self) -> int:
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def hit_rate(self) -> float:
        n = self.accesses
        return 1.0 if n == 0 else (self.read_hits + self.write_hits) / n


class LRUCache:
    """A capacity-managed LRU cache over variable-size chunks.

    Keys are opaque integers; each access carries the chunk's byte size
    (constant per chunk kind).  Dirty chunks charge a write-back when
    evicted or flushed.
    """

    __slots__ = ("capacity_bytes", "stats", "_entries", "_used_bytes")

    def __init__(self, capacity_bytes: float):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = float(capacity_bytes)
        self.stats = CacheStats()
        # key -> [size, dirty]
        self._entries: OrderedDict[int, list] = OrderedDict()
        self._used_bytes = 0

    # -- properties ---------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    # -- the hot path ---------------------------------------------------------

    def access(self, key: int, size: int, write: bool) -> bool:
        """Touch a chunk; returns True on hit."""
        entries = self._entries
        entry = entries.get(key)
        stats = self.stats
        if entry is not None:
            entries.move_to_end(key)
            if write:
                entry[1] = True
                stats.write_hits += 1
            else:
                stats.read_hits += 1
            return True
        # Miss: install (write misses charge only the eventual write-back,
        # read misses charge the memory read now).
        if write:
            stats.write_misses += 1
        else:
            stats.read_misses += 1
            stats.mem_read_bytes += size
        entries[key] = [size, write]
        self._used_bytes += size
        while self._used_bytes > self.capacity_bytes:
            _, (esize, dirty) = entries.popitem(last=False)
            self._used_bytes -= esize
            if dirty:
                stats.writebacks += 1
                stats.mem_write_bytes += esize
        return False

    def access_many(self, keys, size: int, write: bool) -> None:
        """Touch a sequence of chunks of uniform size."""
        for key in keys:
            self.access(key, size, write)

    # -- management ---------------------------------------------------------

    def flush(self) -> None:
        """Write back all dirty chunks and empty the cache."""
        for _, (size, dirty) in self._entries.items():
            if dirty:
                self.stats.writebacks += 1
                self.stats.mem_write_bytes += size
        self._entries.clear()
        self._used_bytes = 0

    def reset_stats(self) -> CacheStats:
        """Return current stats and start a fresh counter epoch (cache
        contents are kept -- used to discard warm-up traffic)."""
        old = self.stats
        self.stats = CacheStats()
        return old


class BatchLRU:
    """Batched replay engine: the LRU model consumed whole streams at a time.

    Semantically identical to :class:`LRUCache` -- same capacity rule, same
    hit/miss/write-back accounting, byte-identical :class:`CacheStats` on
    any access sequence (asserted by the property tests) -- but the unit of
    work is a *segment* of packed relative keys instead of one access, so
    the per-access Python overhead (method dispatch, dataclass counter
    updates, list-valued entries) disappears from the hot loop.

    Entries are stored as ``key -> (size << 1) | dirty`` in an ordered
    dict; statistics are accumulated in local integers for the duration of
    one :meth:`replay` call and folded into :attr:`stats` on exit, so
    :meth:`reset_stats` epochs (which the measurement campaigns place at
    job-stream boundaries) behave exactly as with the reference cache.
    """

    __slots__ = ("capacity_bytes", "stats", "_entries", "_used_bytes")

    def __init__(self, capacity_bytes: float):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = float(capacity_bytes)
        self.stats = CacheStats()
        # key -> (size << 1) | dirty
        self._entries: OrderedDict[int, int] = OrderedDict()
        self._used_bytes = 0

    # -- properties ---------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    # -- the hot path -------------------------------------------------------

    def prepare(self, segments):
        """Engine-specific packing of generic segments (identity here; the
        native engine flattens them into C-ready arrays)."""
        return tuple(segments)

    def replay(self, segments, base: int = 0) -> int:
        """Replay packed access segments; returns accesses processed.

        ``segments`` is a sequence of ``(prebase, size, write, rel_keys)``
        tuples: each segment touches chunks ``prebase + base + r`` for
        ``r`` in ``rel_keys`` (a plain list of ints), all with the same
        byte ``size`` and read/write direction.  ``base`` translates a
        memoized relative stream to its absolute position (the tile's
        anchor), which is what makes one packed stream serve every
        congruent tile of a plan.
        """
        entries = self._entries
        get = entries.get
        move = entries.move_to_end
        pop = entries.popitem
        cap = self.capacity_bytes
        used = self._used_bytes
        rh = rm = wh = wm = wb = 0
        mrb = mwb = 0
        n = 0
        for prebase, size, write, rel in segments:
            b = prebase + base
            n += len(rel)
            if write:
                dval = (size << 1) | 1
                for r in rel:
                    k = b + r
                    if get(k) is not None:
                        move(k)
                        entries[k] = dval
                        wh += 1
                    else:
                        wm += 1
                        entries[k] = dval
                        used += size
                        while used > cap:
                            v = pop(False)[1]
                            es = v >> 1
                            used -= es
                            if v & 1:
                                wb += 1
                                mwb += es
            else:
                cval = size << 1
                for r in rel:
                    k = b + r
                    if get(k) is not None:
                        move(k)
                        rh += 1
                    else:
                        rm += 1
                        mrb += size
                        entries[k] = cval
                        used += size
                        while used > cap:
                            v = pop(False)[1]
                            es = v >> 1
                            used -= es
                            if v & 1:
                                wb += 1
                                mwb += es
        self._used_bytes = used
        s = self.stats
        s.read_hits += rh
        s.read_misses += rm
        s.write_hits += wh
        s.write_misses += wm
        s.writebacks += wb
        s.mem_read_bytes += mrb
        s.mem_write_bytes += mwb
        return n

    def access(self, key: int, size: int, write: bool) -> bool:
        """Single-access compatibility shim (not the hot path)."""
        hit = key in self._entries
        self.replay([(0, size, write, (key,))])
        return hit

    # -- management ---------------------------------------------------------

    def flush(self) -> None:
        """Write back all dirty chunks and empty the cache."""
        stats = self.stats
        for v in self._entries.values():
            if v & 1:
                stats.writebacks += 1
                stats.mem_write_bytes += v >> 1
        self._entries.clear()
        self._used_bytes = 0

    def reset_stats(self) -> CacheStats:
        """Return current stats and start a fresh counter epoch (cache
        contents are kept -- used to discard warm-up traffic)."""
        old = self.stats
        self.stats = CacheStats()
        return old
