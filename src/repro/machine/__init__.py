"""Simulated multicore machine substrate.

The hardware substitution documented in DESIGN.md: a parametric machine
model (:mod:`spec`), an LRU model of the shared L3 driven by the real
schedules' access streams (:mod:`cache`, :mod:`streams`, :mod:`measure`
-- the LIKWID counter substitute), a simulated PMU with likwid-style
marker regions and counter groups (:mod:`pmu`), a discrete-event
execution simulator (:mod:`simulator`) and the calibration provenance
(:mod:`calibration`).
"""

from .cache import BatchLRU, CacheStats, LRUCache
from .calibration import CalibrationReport, validate_calibration
from .counters import SUBSTRATE_COUNTERS, SubstrateCounters, timed_section
from .measure import (
    TrafficResult,
    measure_sweep_code_balance,
    measure_tiled_code_balance,
    resolve_engine,
)
from .native import NativeLRU, make_lru, native_available
from .pmu import (
    GLOBAL_PMU,
    PERF_GROUPS,
    PMU,
    PerfGroup,
    PerfRegion,
    PerfSample,
    resolve_groups,
)
from .simulator import SimResult, simulate_sweep, simulate_tiled, tg_efficiency
from .spec import HASWELL_EP, MachineSpec
from .streams import (
    ALL_ARRAYS,
    ARRAY_GROUPS,
    CLASS_RECIPES,
    COMPONENT_RECIPES,
    AccessOp,
    ArrayGroup,
    BatchComponentStreamEmitter,
    BatchStreamEmitter,
    ComponentStreamEmitter,
    StreamEmitter,
)

__all__ = [
    "ALL_ARRAYS",
    "ARRAY_GROUPS",
    "AccessOp",
    "ArrayGroup",
    "BatchComponentStreamEmitter",
    "BatchLRU",
    "BatchStreamEmitter",
    "CLASS_RECIPES",
    "COMPONENT_RECIPES",
    "CacheStats",
    "CalibrationReport",
    "ComponentStreamEmitter",
    "GLOBAL_PMU",
    "HASWELL_EP",
    "LRUCache",
    "MachineSpec",
    "NativeLRU",
    "PERF_GROUPS",
    "PMU",
    "PerfGroup",
    "PerfRegion",
    "PerfSample",
    "SUBSTRATE_COUNTERS",
    "SimResult",
    "StreamEmitter",
    "SubstrateCounters",
    "TrafficResult",
    "make_lru",
    "measure_sweep_code_balance",
    "measure_tiled_code_balance",
    "native_available",
    "resolve_engine",
    "resolve_groups",
    "simulate_sweep",
    "simulate_tiled",
    "tg_efficiency",
    "timed_section",
    "validate_calibration",
]
