"""Simulated multicore machine substrate.

The hardware substitution documented in DESIGN.md: a parametric machine
model (:mod:`spec`), an LRU model of the shared L3 driven by the real
schedules' access streams (:mod:`cache`, :mod:`streams`, :mod:`measure`
-- the LIKWID counter substitute), a discrete-event execution simulator
(:mod:`simulator`) and the calibration provenance (:mod:`calibration`).
"""

from .cache import BatchLRU, CacheStats, LRUCache
from .calibration import CalibrationReport, validate_calibration
from .counters import SUBSTRATE_COUNTERS, SubstrateCounters
from .measure import (
    TrafficResult,
    measure_sweep_code_balance,
    measure_tiled_code_balance,
    resolve_engine,
)
from .native import NativeLRU, make_lru, native_available
from .simulator import SimResult, simulate_sweep, simulate_tiled, tg_efficiency
from .spec import HASWELL_EP, MachineSpec
from .streams import (
    ALL_ARRAYS,
    ARRAY_GROUPS,
    CLASS_RECIPES,
    COMPONENT_RECIPES,
    AccessOp,
    ArrayGroup,
    BatchComponentStreamEmitter,
    BatchStreamEmitter,
    ComponentStreamEmitter,
    StreamEmitter,
)

__all__ = [
    "ALL_ARRAYS",
    "ARRAY_GROUPS",
    "AccessOp",
    "ArrayGroup",
    "BatchComponentStreamEmitter",
    "BatchLRU",
    "BatchStreamEmitter",
    "CLASS_RECIPES",
    "COMPONENT_RECIPES",
    "CacheStats",
    "CalibrationReport",
    "ComponentStreamEmitter",
    "HASWELL_EP",
    "LRUCache",
    "MachineSpec",
    "NativeLRU",
    "SUBSTRATE_COUNTERS",
    "SimResult",
    "StreamEmitter",
    "SubstrateCounters",
    "TrafficResult",
    "make_lru",
    "measure_sweep_code_balance",
    "measure_tiled_code_balance",
    "native_available",
    "resolve_engine",
    "simulate_sweep",
    "simulate_tiled",
    "tg_efficiency",
    "validate_calibration",
]
