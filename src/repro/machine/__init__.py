"""Simulated multicore machine substrate.

The hardware substitution documented in DESIGN.md: a parametric machine
model (:mod:`spec`), an LRU model of the shared L3 driven by the real
schedules' access streams (:mod:`cache`, :mod:`streams`, :mod:`measure`
-- the LIKWID counter substitute), a discrete-event execution simulator
(:mod:`simulator`) and the calibration provenance (:mod:`calibration`).
"""

from .cache import CacheStats, LRUCache
from .calibration import CalibrationReport, validate_calibration
from .measure import (
    TrafficResult,
    measure_sweep_code_balance,
    measure_tiled_code_balance,
)
from .simulator import SimResult, simulate_sweep, simulate_tiled, tg_efficiency
from .spec import HASWELL_EP, MachineSpec
from .streams import (
    ALL_ARRAYS,
    ARRAY_GROUPS,
    CLASS_RECIPES,
    COMPONENT_RECIPES,
    AccessOp,
    ArrayGroup,
    ComponentStreamEmitter,
    StreamEmitter,
)

__all__ = [
    "ALL_ARRAYS",
    "ARRAY_GROUPS",
    "AccessOp",
    "ArrayGroup",
    "CLASS_RECIPES",
    "COMPONENT_RECIPES",
    "CacheStats",
    "CalibrationReport",
    "ComponentStreamEmitter",
    "HASWELL_EP",
    "LRUCache",
    "MachineSpec",
    "SimResult",
    "StreamEmitter",
    "TrafficResult",
    "measure_sweep_code_balance",
    "measure_tiled_code_balance",
    "simulate_sweep",
    "simulate_tiled",
    "tg_efficiency",
    "validate_calibration",
]
