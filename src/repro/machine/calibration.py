"""Calibration of the machine model's in-core constants.

The cache simulator needs no calibration (capacities and the access
stream are exact), but the execution simulator's in-core constants cannot
be derived from first principles in Python.  Each is pinned to a number
the paper itself states, so the calibration is traceable:

``t_lup_core_ns = 80``
    One LUP is 248 DP flops (Section III-A).  The paper reports the code
    runs "at only about 5% of the theoretical peak performance of the CPU
    despite being cache bound" (Section VI).  At 2.3 GHz x 16 flops/cycle
    that is ~1.84 Gflop/s/core, i.e. ~135 ns/LUP *including* memory
    stalls; subtracting the ECM transfer term of the decoupled code
    (~200-400 B/LUP at 18 GB/s/core -> 11-22 ns) and the tiling overhead
    leaves ~80 ns of pure in-core time.

``core_bandwidth_gbs = 18``
    A single Haswell core cannot saturate the socket: spatial blocking
    needs ~6 cores to reach the 41 MLUP/s roofline (Fig. 6a/6b).  With
    the ECM non-overlap model, saturation at m cores requires
    ``m / (t_core + B_c/bw_core) = BW / B_c``; m = 6, B_c = 1216 B/LUP
    and BW = 50 GB/s give bw_core = 18 GB/s.

``tiled_overhead = 1.12``
    Temporal blocking trades streaming loops for ragged diamond bounds;
    Girih measures a ~10% in-core penalty (the companion paper [22]);
    also consistent with MWD's ~75% parallel efficiency on the full chip
    (Fig. 6a) once intra-tile efficiencies are accounted.

``sync_ns = 150``
    Girih synchronizes intra-tile threads with flag/atomic handshakes
    (cheaper than a full OpenMP barrier); tiles synchronize once per
    wavefront front.  The paper states the FIFO queue's lock overhead is
    negligible, and with this value it is (< 1% of tile time); the
    per-front cost is what drives large thread groups toward larger
    ``B_z`` in the tuner, as in the paper.

:func:`validate_calibration` recomputes the three headline shapes from
the constants and is exercised by the test suite, so any recalibration
that breaks the paper's qualitative results fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.models import spatial_code_balance
from .spec import MachineSpec

__all__ = ["CalibrationReport", "validate_calibration"]


@dataclass(frozen=True)
class CalibrationReport:
    """Headline quantities implied by a machine spec's constants."""

    spatial_single_core_mlups: float
    spatial_saturation_cores: float
    spatial_saturated_mlups: float
    decoupled_per_core_mlups: float
    full_chip_decoupled_mlups: float

    @property
    def speedup_over_spatial(self) -> float:
        return self.full_chip_decoupled_mlups / self.spatial_saturated_mlups


def validate_calibration(spec: MachineSpec, mwd_code_balance: float = 250.0) -> CalibrationReport:
    """Headline numbers implied by the calibration constants.

    * spatial blocking must saturate the socket bandwidth at roughly six
      cores and ~41 MLUP/s (Fig. 6a/6b);
    * the decoupled (MWD) code at full chip must land at 3-4x spatial
      (the paper's headline).
    """
    bc_sp = spatial_code_balance()
    t_core = spec.t_lup_core_ns * 1e-9
    r1 = 1.0 / (t_core + bc_sp / (spec.core_bandwidth_gbs * 1e9))
    p_mem = spec.bandwidth_gbs * 1e9 / bc_sp
    saturation_cores = p_mem / r1

    t_tiled = t_core * spec.tiled_overhead
    r1_mwd = 1.0 / (t_tiled + mwd_code_balance / (spec.core_bandwidth_gbs * 1e9))
    # ~0.85 intra-tile efficiency is typical for the tuned configurations.
    full_chip = spec.cores * r1_mwd * 0.85

    return CalibrationReport(
        spatial_single_core_mlups=r1 / 1e6,
        spatial_saturation_cores=saturation_cores,
        spatial_saturated_mlups=p_mem / 1e6,
        decoupled_per_core_mlups=r1_mwd / 1e6,
        full_chip_decoupled_mlups=full_chip / 1e6,
    )
