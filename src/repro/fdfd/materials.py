"""Optical material models for the solar-cell simulation.

THIIM was designed so that frequency-domain optical constants (complex
refractive index ``n - i*kappa`` measured at the simulation wavelength) can
be used *directly*, without auxiliary differential equations -- including
metals with negative real permittivity such as the silver back contact
(Section I and V of the paper).

Conventions
-----------
We use the ``e^{+i w t}`` time convention, normalized units with vacuum
permittivity, permeability and light speed equal to one, and express every
material at a given angular frequency ``omega`` as

* ``eps``   -- the real part of the relative permittivity, ``n^2 - kappa^2``
  (negative for metals below the plasma frequency), and
* ``sigma`` -- the equivalent electric conductivity ``2 n kappa * omega``
  carrying the absorption.

The complex permittivity is then ``eps - i sigma / omega`` and the
frequency-domain Ampere law reads ``(i w eps + sigma) E = curl H``, which
is exactly the left-hand side of the paper's Eqs. (6)-(7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Material",
    "VACUUM",
    "AIR",
    "GLASS",
    "TCO_ZNO",
    "A_SI_H",
    "UC_SI_H",
    "SIO2",
    "SILVER",
    "MATERIAL_LIBRARY",
]


@dataclass(frozen=True)
class Material:
    """An isotropic, non-magnetic optical material.

    Parameters
    ----------
    name:
        Human-readable label (also the key in :data:`MATERIAL_LIBRARY`).
    n:
        Real part of the refractive index at the design wavelength.
    kappa:
        Extinction coefficient (>= 0) at the design wavelength.
    """

    name: str
    n: float
    kappa: float = 0.0

    def __post_init__(self) -> None:
        if self.kappa < 0:
            raise ValueError(f"extinction coefficient must be >= 0, got {self.kappa}")

    @property
    def complex_index(self) -> complex:
        """``n - i kappa`` (lossy materials have negative imaginary part
        under the ``e^{+i w t}`` convention)."""
        return complex(self.n, -self.kappa)

    @property
    def eps_real(self) -> float:
        """Real relative permittivity ``n^2 - kappa^2``."""
        return self.n**2 - self.kappa**2

    def sigma(self, omega: float) -> float:
        """Equivalent conductivity ``2 n kappa w`` carrying the absorption."""
        if omega <= 0:
            raise ValueError(f"omega must be positive, got {omega}")
        return 2.0 * self.n * self.kappa * omega

    def complex_eps(self, omega: float) -> complex:
        """Full complex relative permittivity ``eps - i sigma/omega``."""
        return complex(self.eps_real, -self.sigma(omega) / omega)

    @property
    def is_negative_eps(self) -> bool:
        """True for metals with Re(eps) < 0; these grid cells take the
        THIIM *back iteration* (Eq. 5 of the paper)."""
        return self.eps_real < 0

    @property
    def is_lossless(self) -> bool:
        return self.kappa == 0.0

    @classmethod
    def from_permittivity(cls, name: str, eps: complex) -> "Material":
        """Construct from a complex relative permittivity ``eps' - i eps''``.

        Inverts ``(n - i kappa)^2 = eps``.
        """
        root = np.sqrt(complex(eps))
        n, kappa = float(root.real), float(-root.imag)
        if n < 0:  # choose the root with non-negative n
            n, kappa = -n, -kappa
        return cls(name, n=n, kappa=kappa)


# ---------------------------------------------------------------------------
# Library of materials appearing in the paper's Fig. 1 tandem cell, with
# optical constants representative of ~500-600 nm (visible) illumination.
# Values are typical literature numbers; the *structure* (which materials
# are lossy, which have negative permittivity) is what matters for
# exercising the solver paths.
# ---------------------------------------------------------------------------

VACUUM = Material("vacuum", n=1.0)
AIR = Material("air", n=1.0)
GLASS = Material("glass", n=1.5)
#: Transparent conductive oxide front electrode (ZnO:Al).
TCO_ZNO = Material("ZnO", n=1.9, kappa=0.01)
#: Hydrogenated amorphous silicon absorber (top cell of the tandem).
A_SI_H = Material("a-Si:H", n=4.3, kappa=0.6)
#: Hydrogenated microcrystalline silicon absorber (bottom cell).
UC_SI_H = Material("uc-Si:H", n=3.9, kappa=0.25)
#: Silica nano-particle scatterers at the back reflector.
SIO2 = Material("SiO2", n=1.45)
#: Silver back contact: Re(eps) = 0.05^2 - 3.1^2 < 0 -> back iteration.
SILVER = Material("Ag", n=0.05, kappa=3.1)

MATERIAL_LIBRARY = {
    m.name: m
    for m in (VACUUM, AIR, GLASS, TCO_ZNO, A_SI_H, UC_SI_H, SIO2, SILVER)
}
