"""Berenger split-field perfectly matched layer (PML).

The solar-cell configuration terminates the vertical (z) axis with
absorbing layers so outgoing waves leave the domain without reflection
(Section I of the paper, citing Berenger).  The split-field formulation is
what forces the twelve-component structure of the THIIM kernel: each split
part ``Fab`` is damped by the PML conductivity profile of its derivative
axis ``b`` only.

This module produces the per-axis conductivity profiles; the coefficient
builder folds them, together with material losses, into the per-component
``c``/``t`` arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PMLSpec", "pml_profile"]


@dataclass(frozen=True)
class PMLSpec:
    """PML configuration for one axis.

    Parameters
    ----------
    thickness:
        PML depth in grid cells on each terminated face (0 disables).
    grading_order:
        Polynomial grading exponent ``m`` of the conductivity profile
        ``sigma(d) = sigma_max * (d / thickness)^m``; 2-4 is standard.
    sigma_max:
        Peak conductivity at the outer boundary, in normalized units.
        If ``None`` a standard near-optimal value is derived from the
        target theoretical reflection coefficient.
    reflection_target:
        Desired theoretical normal-incidence reflection coefficient used
        to derive ``sigma_max`` when not given explicitly.
    low, high:
        Whether to place an absorber at the low-index / high-index face.
    """

    thickness: int = 8
    grading_order: float = 3.0
    sigma_max: float | None = None
    reflection_target: float = 1e-6
    low: bool = True
    high: bool = True

    def __post_init__(self) -> None:
        if self.thickness < 0:
            raise ValueError("PML thickness must be >= 0")
        if self.grading_order <= 0:
            raise ValueError("grading order must be positive")
        if not (0 < self.reflection_target < 1):
            raise ValueError("reflection target must be in (0, 1)")

    def resolved_sigma_max(self, spacing: float) -> float:
        """Peak conductivity.

        For a polynomial-graded PML of physical depth ``L = thickness *
        spacing`` the theoretical reflection at normal incidence is
        ``R = exp(-2 sigma_max L / (m + 1))`` (normalized units, unit
        impedance), hence the standard prescription::

            sigma_max = -(m + 1) * ln(R) / (2 * L)
        """
        if self.sigma_max is not None:
            return self.sigma_max
        if self.thickness == 0:
            return 0.0
        depth = self.thickness * spacing
        return -(self.grading_order + 1.0) * np.log(self.reflection_target) / (2.0 * depth)


def pml_profile(n: int, spacing: float, spec: PMLSpec | None, *, staggered: bool = False) -> np.ndarray:
    """Conductivity profile along one axis.

    Parameters
    ----------
    n:
        Number of grid cells along the axis.
    spacing:
        Grid spacing along the axis.
    spec:
        PML configuration, or ``None`` for a zero profile.
    staggered:
        Sample the profile at half-integer positions (used for the H-field
        split parts, which live on the staggered sub-grid; matching the
        electric and magnetic profiles cell-by-cell keeps the layer
        reflectionless in the discrete sense).

    Returns
    -------
    numpy.ndarray
        Real conductivity values, shape ``(n,)``.
    """
    sigma = np.zeros(n, dtype=np.float64)
    if spec is None or spec.thickness == 0:
        return sigma
    if 2 * spec.thickness >= n:
        raise ValueError(
            f"PML layers ({spec.thickness} cells each side) do not fit in axis of {n} cells"
        )
    smax = spec.resolved_sigma_max(spacing)
    m = spec.grading_order
    t = spec.thickness
    pos = np.arange(n, dtype=np.float64) + (0.5 if staggered else 0.0)
    if spec.low:
        # Depth measured from the inner PML interface at index t toward
        # index 0; cells outside [0, t] get zero.
        depth = (t - pos) / t
        mask = depth > 0
        sigma[mask] = np.maximum(sigma[mask], smax * depth[mask] ** m)
    if spec.high:
        inner = n - 1 - t
        depth = (pos - inner) / t
        mask = depth > 0
        sigma[mask] = np.maximum(sigma[mask], smax * np.minimum(depth[mask], 1.0) ** m)
    return sigma
