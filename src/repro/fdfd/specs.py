"""Component specifications for the THIIM split-field stencil.

This module is the single source of truth describing the twelve split-field
components of the THIIM (Time Harmonic Inverse Iteration Method) kernel and
the memory-access signature of each component update.  It is consumed by

* :mod:`repro.fdfd.kernels` -- to perform the actual numerical updates,
* :mod:`repro.machine.streams` -- to generate the memory-access streams fed
  to the cache simulator,
* :mod:`repro.core.models` -- to derive the analytic code-balance numbers
  of Section III of the paper (flop counts, bytes per lattice-site update).

Background
----------
The split-field (Berenger) formulation splits each of the six field
components into two parts according to which transverse derivative feeds
it, e.g. ``Ex = Exy + Exz`` where ``Exy`` is driven by ``dHz/dy`` and
``Exz`` by ``-dHy/dz``.  This yields 12 coupled update equations (Section I
of the paper).  Each update has the algebraic form::

    F_new = t * (A[shifted] + B[shifted] - A - B) + c * F_old  (+ src)

with per-cell complex coefficients ``t`` and ``c`` and, for the four
components with a derivative along the outer (z) dimension, a per-cell
source array.  This gives 4*3 + 8*2 = 28 domain-sized coefficient arrays,
which together with the 12 field arrays makes the famous 40 double-complex
arrays = 640 bytes per grid cell of the paper.

Axis convention
---------------
Arrays are laid out ``(z, y, x)``:

* ``z`` (axis 0) is the *outer* dimension -- wavefront traversal;
* ``y`` (axis 1) is the *middle* dimension -- diamond tiling;
* ``x`` (axis 2) is the *inner*, contiguous dimension -- never tiled,
  split among threads of a thread group.

Stagger convention (Yee cell):  E components sit at half-integer positions
along their own axis; H components at half-integer positions along the two
transverse axes.  Consequently every H update reads the driving E pair with
a ``+1`` index shift along the derivative axis and every E update reads the
driving H pair with a ``-1`` shift (Fig. 3 of the paper: H depends in the
positive direction, E in the negative direction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

__all__ = [
    "AXIS_Z",
    "AXIS_Y",
    "AXIS_X",
    "AXIS_NAMES",
    "ComponentSpec",
    "SPECS",
    "E_COMPONENTS",
    "H_COMPONENTS",
    "ALL_COMPONENTS",
    "SOURCE_COMPONENTS",
    "COMPONENT_INDEX",
    "FIELD_ARRAY_COUNT",
    "COEFF_ARRAY_COUNT",
    "TOTAL_ARRAY_COUNT",
    "BYTES_PER_NUMBER",
    "BYTES_PER_CELL",
    "FLOPS_PER_LUP",
    "flops_for_component",
    "component_groups",
]

#: Axis indices for the ``(z, y, x)`` array layout.
AXIS_Z, AXIS_Y, AXIS_X = 0, 1, 2
AXIS_NAMES = ("z", "y", "x")

#: All field quantities are double-complex (two IEEE doubles).
BYTES_PER_NUMBER = 16


@dataclass(frozen=True)
class ComponentSpec:
    """Description of a single split-field component update.

    Attributes
    ----------
    name:
        Canonical component name, e.g. ``"Exy"``: the x-component of E,
        split part driven by the y-derivative.
    field:
        ``"E"`` or ``"H"``.
    comp_axis:
        Axis (0/1/2 = z/y/x) of the *vector component* (``Exy`` -> x).
    deriv_axis:
        Axis along which the finite-difference derivative is taken
        (``Exy`` -> y).
    sign:
        Sign of the curl contribution (+1 or -1).
    reads:
        The two split parts of the driving field that are summed before
        differencing, e.g. ``("Hzx", "Hzy")`` for ``Exy``.
    shift:
        Index shift of the *far* read along ``deriv_axis``: ``+1`` for all
        H updates, ``-1`` for all E updates.
    source:
        Name of the per-cell source coefficient array, or ``None``.  Only
        the four components with ``deriv_axis == AXIS_Z`` carry sources
        (plane-wave injection happens on a z-plane).
    """

    name: str
    field: str
    comp_axis: int
    deriv_axis: int
    sign: int
    reads: Tuple[str, str]
    shift: int
    source: str | None = None

    @property
    def coeff_t(self) -> str:
        """Name of the curl-term coefficient array (``t`` in Listing 1/2)."""
        return "t" + self.name

    @property
    def coeff_c(self) -> str:
        """Name of the self-term coefficient array (``c`` in Listing 1/2)."""
        return "c" + self.name

    @property
    def coeff_names(self) -> Tuple[str, ...]:
        """All coefficient arrays used by this component's update."""
        if self.source is not None:
            return (self.coeff_t, self.coeff_c, self.source)
        return (self.coeff_t, self.coeff_c)

    @property
    def loss_axis(self) -> int:
        """Axis whose (PML) conductivity damps this split component.

        In the split-field PML the component ``Exy`` is damped by
        ``sigma_y``, ``Exz`` by ``sigma_z`` and so on: the loss axis is the
        derivative axis.
        """
        return self.deriv_axis


def _spec(name: str, sign: int, reads: Tuple[str, str], source: str | None = None) -> ComponentSpec:
    """Build a :class:`ComponentSpec` from its canonical name.

    The name encodes everything else: ``Fab`` is field ``F``, vector
    component ``a``, derivative along ``b``; H updates shift ``+1``, E
    updates ``-1``.
    """
    field = name[0]
    axis_of = {"x": AXIS_X, "y": AXIS_Y, "z": AXIS_Z}
    return ComponentSpec(
        name=name,
        field=field,
        comp_axis=axis_of[name[1]],
        deriv_axis=axis_of[name[2]],
        sign=sign,
        reads=reads,
        shift=+1 if field == "H" else -1,
        source=source,
    )


# ---------------------------------------------------------------------------
# The twelve split-field component updates.
#
# Curl components (e^{i w t} convention):
#   (curl H)_x = dHz/dy - dHy/dz      -> Exy: +dy(Hz),  Exz: -dz(Hy)
#   (curl H)_y = dHx/dz - dHz/dx      -> Eyz: +dz(Hx),  Eyx: -dx(Hz)
#   (curl H)_z = dHy/dx - dHx/dy      -> Ezx: +dx(Hy),  Ezy: -dy(Hx)
#   H updates carry the opposite overall sign: dH/dt = -(1/mu) curl E.
#   (curl E)_x = dEz/dy - dEy/dz      -> Hxy: -dy(Ez),  Hxz: +dz(Ey)
#   (curl E)_y = dEx/dz - dEz/dx      -> Hyz: -dz(Ex),  Hyx: +dx(Ez)
#   (curl E)_z = dEy/dx - dEx/dy      -> Hzx: -dx(Ey),  Hzy: +dy(Ex)
#
# Each driving field is the sum of its two split parts.
# The four components that difference along z carry the plane-wave source
# arrays (the paper's SrcHy / SrcEx style arrays; 4*3 + 8*2 = 28 coefficient
# arrays in total).
# ---------------------------------------------------------------------------

SPECS: Dict[str, ComponentSpec] = {
    s.name: s
    for s in (
        _spec("Exy", +1, ("Hzx", "Hzy")),
        _spec("Exz", -1, ("Hyx", "Hyz"), source="SrcEx"),
        _spec("Eyz", +1, ("Hxy", "Hxz"), source="SrcEy"),
        _spec("Eyx", -1, ("Hzx", "Hzy")),
        _spec("Ezx", +1, ("Hyx", "Hyz")),
        _spec("Ezy", -1, ("Hxy", "Hxz")),
        _spec("Hxy", -1, ("Ezx", "Ezy")),
        _spec("Hxz", +1, ("Eyx", "Eyz"), source="SrcHx"),
        _spec("Hyz", -1, ("Exy", "Exz"), source="SrcHy"),
        _spec("Hyx", +1, ("Ezx", "Ezy")),
        _spec("Hzx", -1, ("Eyx", "Eyz")),
        _spec("Hzy", +1, ("Exy", "Exz")),
    )
}

#: Update order within a half step follows the paper's listing layout:
#: components are independent within a half step (E components only read H
#: arrays and vice versa), so any order is valid; we fix one for
#: reproducibility.
E_COMPONENTS: Tuple[str, ...] = ("Exy", "Exz", "Eyz", "Eyx", "Ezx", "Ezy")
H_COMPONENTS: Tuple[str, ...] = ("Hxy", "Hxz", "Hyz", "Hyx", "Hzx", "Hzy")
ALL_COMPONENTS: Tuple[str, ...] = H_COMPONENTS + E_COMPONENTS

#: The four components carrying source arrays.
SOURCE_COMPONENTS: Tuple[str, ...] = tuple(
    s.name for s in SPECS.values() if s.source is not None
)

#: Stable integer ids (used by the access-stream generator).
COMPONENT_INDEX: Mapping[str, int] = {
    name: i for i, name in enumerate(ALL_COMPONENTS)
}

#: 12 field arrays + 28 coefficient arrays = 40 double-complex arrays,
#: i.e. 640 bytes of state per grid cell (Section III of the paper).
FIELD_ARRAY_COUNT = len(SPECS)
COEFF_ARRAY_COUNT = sum(len(s.coeff_names) for s in SPECS.values())
TOTAL_ARRAY_COUNT = FIELD_ARRAY_COUNT + COEFF_ARRAY_COUNT
BYTES_PER_CELL = TOTAL_ARRAY_COUNT * BYTES_PER_NUMBER


def flops_for_component(name: str) -> int:
    """Double-precision flops of one component update at one grid cell.

    Complex multiply = 6 flops, complex add = 2 flops.  The update
    ``t*(a' + b' - a - b) + c*f (+ src)`` costs 3 complex adds (curl), two
    complex multiplies and one final add, i.e. 20 flops; a source term adds
    one more complex add (22 flops).  These match Listings 1 and 2 of the
    paper exactly.
    """
    return 22 if SPECS[name].source is not None else 20


#: 4 * 22 + 8 * 20 = 248 flops per full lattice-site update (Section III-A).
FLOPS_PER_LUP = sum(flops_for_component(n) for n in ALL_COMPONENTS)


def component_groups(n_groups: int) -> Tuple[Tuple[str, ...], ...]:
    """Partition the six components of a half step for n-way parallelism.

    The paper parameterizes the intra-tile component parallelism as 1, 2,
    3 or 6 threads per field update (Fig. 3 shows the 3-way split).  The
    six component updates of a half step are mutually independent, so any
    balanced partition is valid; we split the canonical order contiguously.

    Returns the partition of ``range(6)`` as index groups (the same
    partition applies to the E and the H half step).
    """
    if n_groups not in (1, 2, 3, 6):
        raise ValueError(f"component parallelism must be 1, 2, 3 or 6, got {n_groups}")
    per = 6 // n_groups
    idx = tuple(range(6))
    return tuple(idx[i * per : (i + 1) * per] for i in range(n_groups))
