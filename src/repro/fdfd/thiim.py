"""THIIM solver driver.

Ties the substrate together: grid + scene + PML + sources -> coefficient
arrays -> iterate the twelve-component kernel until the fields converge to
the time-harmonic solution.  The driver can run the naive sweep, the
spatially blocked sweep, or (through :class:`repro.core.executor`) a
wavefront-diamond tiled traversal -- all numerically equivalent.

The *inverse iteration* view: the leapfrog scheme with the ``e^{i w tau}``
phase factors is a fixed-point iteration whose fixed point satisfies the
discrete frequency-domain Maxwell equations (Eqs. 6-7 of the paper).
Cells with negative real permittivity take the back iteration (Eq. 5),
which keeps the spectral radius below one for metals -- the property that
makes silver back contacts tractable without auxiliary differential
equations.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from .. import telemetry
from ..resilience import faults
from ..resilience.errors import SolverDiverged
from .coefficients import BatchedCoefficientSet, CoefficientSet, build_coefficients
from .fields import BatchedFieldState, FieldState
from .geometry import Scene
from .grid import Grid
from .kernels import naive_sweep, spatial_blocked_sweep, step
from .observables import relative_change
from .pml import PMLSpec
from .sources import PlaneWaveSource
from .specs import ALL_COMPONENTS

__all__ = [
    "SolveResult",
    "BatchSolveResult",
    "THIIMSolver",
    "BatchedTHIIMSolver",
    "divergence_reason",
]

#: Residual blow-up policy: diverged once the residual grew for this many
#: consecutive checks AND sits this far above the best residual seen.  A
#: healthy inverse iteration decreases (roughly) monotonically; a spectral
#: radius above one grows geometrically and trips this within a few checks
#: instead of burning the whole ``max_steps`` budget.
_BLOWUP_RUN = 3
_BLOWUP_FACTOR = 1e4


def divergence_reason(res: float, history: list[float]) -> str | None:
    """Why the iteration counts as diverged, or ``None`` while healthy."""
    if not np.isfinite(res):
        return "non-finite residual (NaN/Inf in the fields)"
    if len(history) > _BLOWUP_RUN:
        tail = history[-(_BLOWUP_RUN + 1):]
        if all(b > a for a, b in zip(tail, tail[1:])) and \
                res > _BLOWUP_FACTOR * min(history):
            return (f"residual blow-up ({_BLOWUP_RUN} consecutive increases, "
                    f"{res:.3e} vs best {min(history):.3e})")
    return None


@dataclass
class SolveResult:
    """Outcome of a THIIM run."""

    fields: FieldState
    iterations: int
    residual: float
    converged: bool
    residual_history: list[float] = dc_field(default_factory=list)


class THIIMSolver:
    """Time Harmonic Inverse Iteration Method driver.

    Parameters
    ----------
    grid:
        Simulation grid.
    omega:
        Angular frequency of the illumination (normalized units, vacuum
        wavelength ``2 pi / omega`` in grid-length units).
    scene:
        Optional material scene; vacuum if omitted.
    source:
        Optional plane-wave source.
    pml:
        Per-axis PML specs (typically ``{"z": PMLSpec(...)}`` with
        periodic x/y, mirroring the production setup).
    tau:
        Time step; defaults to the CFL-stable step of the grid.  The CFL
        limit is evaluated with the maximum wave speed in the scene.
    supersample:
        FIT-style supersampling factor for rasterizing curved interfaces.
    """

    def __init__(
        self,
        grid: Grid,
        omega: float,
        scene: Scene | None = None,
        source: PlaneWaveSource | None = None,
        pml: Mapping[str, PMLSpec] | None = None,
        tau: float | None = None,
        supersample: int = 1,
    ) -> None:
        self.grid = grid
        self.omega = omega
        self.scene = scene
        self.source = source

        if scene is not None:
            self.eps, self.sigma = scene.rasterize(grid, omega, supersample=supersample)
        else:
            self.eps = np.ones(grid.shape, dtype=np.float64)
            self.sigma = np.zeros(grid.shape, dtype=np.float64)

        if tau is None:
            # Wave speed is 1/sqrt(eps mu); eps < 1 (but > 0) raises the
            # speed, metals (eps < 0) are evanescent and do not constrain
            # the CFL step.
            pos = self.eps[self.eps > 0]
            max_speed = float(1.0 / np.sqrt(np.min(pos))) if pos.size else 1.0
            tau = grid.cfl_time_step(light_speed=max(max_speed, 1.0))
        self.tau = tau

        if source is not None:
            if source.z_width > 0 and source.wavenumber is None:
                # Default phasing for a thick source: vacuum dispersion.
                from dataclasses import replace

                source = replace(source, wavenumber=omega)
            raw_sources = source.build(grid)
        else:
            raw_sources = None
        self.coefficients: CoefficientSet = build_coefficients(
            grid,
            omega,
            self.tau,
            eps=self.eps,
            sigma=self.sigma,
            pml=pml,
            sources=raw_sources,
        )
        self.fields = FieldState(grid)

    # -- stepping ----------------------------------------------------------------

    def reset(self) -> None:
        """Zero the fields (restart the inverse iteration)."""
        self.fields = FieldState(self.grid)

    def run(self, nsteps: int, traversal: str = "naive", **kw) -> FieldState:
        """Advance ``nsteps`` time steps with a chosen traversal.

        ``traversal`` is ``"naive"`` or ``"spatial"`` here; the diamond
        traversal lives in :class:`repro.core.executor.TiledExecutor`
        (which operates on the same ``fields``/``coefficients``).
        """
        if traversal == "naive":
            naive_sweep(self.fields, self.coefficients, nsteps)
        elif traversal == "spatial":
            spatial_blocked_sweep(
                self.fields, self.coefficients, nsteps, kw.pop("block_y", 16), kw.pop("block_z", None)
            )
        else:
            raise ValueError(f"unknown traversal {traversal!r}")
        return self.fields

    def solve(
        self,
        tol: float = 1e-6,
        max_steps: int = 5000,
        check_every: int = 20,
        callback: Callable[[int, float], None] | None = None,
        checkpoint=None,
        on_divergence: str = "return",
    ) -> SolveResult:
        """Iterate until the fields converge to the time-harmonic solution.

        Convergence is measured as the relative change of the electric
        components over ``check_every`` steps, normalized per step.

        ``checkpoint`` is an optional
        :class:`~repro.resilience.checkpoint.CheckpointManager`: the loop
        resumes from its snapshot (bit-identically -- the sweep sequence
        is deterministic) and re-snapshots on the manager's cadence.
        ``on_divergence`` is ``"return"`` (a non-converged
        :class:`SolveResult`, the historical behaviour) or ``"raise"``
        (:class:`~repro.resilience.errors.SolverDiverged` with a
        diagnostic payload -- what the solve service uses to fail jobs
        fast instead of iterating a blown-up state to ``max_steps``).
        """
        if tol <= 0:
            raise ValueError("tol must be positive")
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        if on_divergence not in ("return", "raise"):
            raise ValueError("on_divergence must be 'return' or 'raise'")
        history: list[float] = []
        steps = 0
        if checkpoint is not None:
            restored = checkpoint.resume(self.fields)
            if restored is not None:
                steps = restored.steps
                history = list(restored.history)
        previous = self.fields.copy()
        while steps < max_steps:
            n = min(check_every, max_steps - steps)
            faults.hit("solver.sweep")
            naive_sweep(self.fields, self.coefficients, n)
            steps += n
            res = relative_change(self.fields, previous) / n
            history.append(res)
            telemetry.publish("progress", sweeps=steps, residual=float(res))
            if callback is not None:
                callback(steps, res)
            reason = divergence_reason(res, history)
            if reason is not None:
                if on_divergence == "raise":
                    raise SolverDiverged(
                        f"THIIM iteration diverged after {steps} steps: {reason}",
                        steps=steps, residual=float(res),
                        history_tail=[float(r) for r in history[-6:]])
                return SolveResult(self.fields, steps, res, False, history)
            if res < tol:
                return SolveResult(self.fields, steps, res, True, history)
            previous = self.fields.copy()
            if checkpoint is not None and checkpoint.due(steps):
                checkpoint.save(self.fields, steps, history)
        return SolveResult(self.fields, steps, history[-1] if history else np.inf, False, history)

    # -- diagnostics ----------------------------------------------------------------

    def frequency_domain_residual(self) -> float:
        """Residual of the discrete frequency-domain equations.

        At the THIIM fixed point one full time step leaves the fields
        invariant up to the analytic phase advance.  We measure
        ``|step(F) - F| / |F|`` over all components, which tends to zero as
        the iteration converges (and is exactly the fixed-point defect of
        the inverse iteration).
        """
        snapshot = self.fields.copy()
        step(self.fields, self.coefficients)
        num = 0.0
        den = 0.0
        for name in self.fields:
            d = self.fields[name] - snapshot[name]
            num += float(np.sum(np.abs(d) ** 2))
            den += float(np.sum(np.abs(snapshot[name]) ** 2))
        # Roll back so the diagnostic is side-effect free.
        for name in self.fields:
            self.fields[name] = snapshot[name]
        if den == 0.0:
            return 0.0 if num == 0.0 else np.inf
        return float(np.sqrt(num / den))

    def material_mask(self, name: str) -> np.ndarray:
        """Boolean mask of the cells occupied by a named material."""
        if self.scene is None:
            raise ValueError("solver has no scene")
        ids, palette = self.scene.material_id_map(self.grid)
        mask = np.zeros(self.grid.shape, dtype=bool)
        for mid, mat in enumerate(palette):
            if mat.name == name:
                mask |= ids == mid
        return mask


# -- batched (campaign) driver -------------------------------------------------


@dataclass
class BatchSolveResult:
    """Outcome of a batched THIIM run: one :class:`SolveResult` per point,
    in the original lane order, plus per-point divergence reasons."""

    results: List[SolveResult]
    diverged: List[Optional[str]]

    @property
    def batch_width(self) -> int:
        return len(self.results)

    @property
    def all_converged(self) -> bool:
        return all(r.converged for r in self.results)


class _BatchSnapshotView:
    """Full-width ``(k,) + grid.shape`` snapshot adapter.

    Duck-types the ``fields`` protocol :class:`CheckpointManager` expects
    (grid attribute, iteration over component names, item get/set), so a
    batched snapshot rides the exact same atomic ``.npz`` machinery as a
    scalar one -- token guard, quarantine, fault sites and all.
    """

    __slots__ = ("grid", "_arrays")

    def __init__(self, grid: Grid, arrays: Optional[Dict[str, np.ndarray]] = None):
        self.grid = grid
        self._arrays = dict(arrays or {})

    def __iter__(self):
        return iter(ALL_COMPONENTS)

    def __getitem__(self, name: str) -> np.ndarray:
        return self._arrays[name]

    def __setitem__(self, name: str, value: np.ndarray) -> None:
        self._arrays[name] = np.ascontiguousarray(value)


def _save_batch_checkpoint(
    checkpoint,
    grid: Grid,
    width: int,
    fields: BatchedFieldState,
    active: List[int],
    results: List[Optional[SolveResult]],
    histories: List[List[float]],
    reasons: List[Optional[str]],
    steps: int,
    extras_get: Optional[Callable[[], Dict]] = None,
) -> None:
    """Snapshot the whole batch: active lanes scattered back to their
    original indices, finished lanes frozen from their results."""
    full: Dict[str, np.ndarray] = {}
    for name in ALL_COMPONENTS:
        arr = np.empty((width,) + grid.shape, dtype=np.complex128)
        for pos, idx in enumerate(active):
            arr[idx] = fields[name][pos]
        for idx, r in enumerate(results):
            if r is not None:
                arr[idx] = r.fields[name]
        full[name] = arr
    extras: Dict = {
        "batch": {
            "width": width,
            "active": list(active),
            "histories": [[float(v) for v in h] for h in histories],
            "reasons": list(reasons),
            "done": {
                str(idx): {
                    "iterations": int(r.iterations),
                    "residual": float(r.residual),
                    "converged": bool(r.converged),
                }
                for idx, r in enumerate(results)
                if r is not None
            },
        }
    }
    if extras_get is not None:
        extras.update(extras_get())
    checkpoint.save(_BatchSnapshotView(grid, full), steps, [], extras=extras)


def run_batched_loop(
    fields: BatchedFieldState,
    coeffs: BatchedCoefficientSet,
    advance: Callable[[int], None],
    step_size: Callable[[int], int],
    tol: float,
    max_steps: int,
    checkpoint=None,
    extras_get: Optional[Callable[[], Dict]] = None,
    extras_set: Optional[Callable[[Dict], None]] = None,
) -> BatchSolveResult:
    """The shared batched convergence loop (naive and tiled drivers).

    Replicates the scalar :meth:`THIIMSolver.solve` cadence exactly, but
    checks convergence **per point**: each active lane's residual is the
    lane-view :func:`relative_change` (identical reduction order to a
    scalar solve of that point), lanes that converge or diverge are
    frozen via :meth:`BatchedFieldState.extract` and dropped from the
    working stack in place, so remaining points stop paying for finished
    ones.  ``advance(n)`` sweeps all *currently active* lanes ``n``
    steps; ``step_size(steps)`` is the driver's chunk policy
    (``min(check_every, remaining)`` for the naive path, the tile chunk
    for the wavefront path).

    With a ``checkpoint`` the loop resumes from (and re-snapshots) a
    full-width batch snapshot -- per-point histories, statuses and
    frozen lanes included -- continuing bit-identically.
    """
    if tol <= 0:
        raise ValueError("tol must be positive")
    width = fields.batch_width
    grid = fields.grid
    active: List[int] = list(range(width))
    histories: List[List[float]] = [[] for _ in range(width)]
    results: List[Optional[SolveResult]] = [None] * width
    reasons: List[Optional[str]] = [None] * width
    steps = 0

    if checkpoint is not None:
        view = _BatchSnapshotView(grid)
        restored = checkpoint.resume(view)
        if restored is not None and (restored.extras or {}).get("batch"):
            b = restored.extras["batch"]
            steps = restored.steps
            active = [int(i) for i in b["active"]]
            histories = [[float(v) for v in h] for h in b["histories"]]
            reasons = [None if r is None else str(r) for r in b["reasons"]]
            for idx_s, meta in (b.get("done") or {}).items():
                idx = int(idx_s)
                lane_fields = FieldState(
                    grid,
                    {n: np.ascontiguousarray(view[n][idx]) for n in ALL_COMPONENTS},
                )
                results[idx] = SolveResult(
                    lane_fields,
                    int(meta["iterations"]),
                    float(meta["residual"]),
                    bool(meta["converged"]),
                    list(histories[idx]),
                )
            if active:
                if len(active) != width:
                    coeffs.compact(active)
                fields.adopt(
                    {n: np.ascontiguousarray(view[n][active]) for n in ALL_COMPONENTS}
                )
            if extras_set is not None:
                extras_set(restored.extras)

    previous = fields.copy() if active else None
    while steps < max_steps and active:
        n = step_size(steps)
        if n < 1:
            break
        faults.hit("solver.sweep")
        advance(n)
        steps += n
        finished: List[int] = []
        lane_res: Dict[str, float] = {}
        for pos, idx in enumerate(active):
            res = relative_change(fields.lane(pos), previous.lane(pos)) / n
            lane_res[str(idx)] = float(res)
            histories[idx].append(res)
            reason = divergence_reason(res, histories[idx])
            if reason is not None:
                reasons[idx] = reason
                results[idx] = SolveResult(
                    fields.extract(pos), steps, res, False, list(histories[idx])
                )
                finished.append(pos)
            elif res < tol:
                results[idx] = SolveResult(
                    fields.extract(pos), steps, res, True, list(histories[idx])
                )
                finished.append(pos)
        if telemetry.enabled():
            # One event per convergence check: every active lane's
            # residual plus which lanes just froze/compacted away.
            remaining = len(active) - len(finished)
            telemetry.publish("batch", sweeps=steps, residuals=lane_res,
                              active=remaining, frozen=width - remaining,
                              compacted=len(finished))
            telemetry.batch_occupancy().set(remaining)
            if finished:
                telemetry.lanes_compacted().inc(len(finished))
        if finished:
            drop = set(finished)
            keep = [p for p in range(len(active)) if p not in drop]
            active = [active[p] for p in keep]
            if not active:
                break
            fields.compact(keep)
            coeffs.compact(keep)
        previous = fields.copy()
        if checkpoint is not None and checkpoint.due(steps):
            _save_batch_checkpoint(
                checkpoint, grid, width, fields, active, results,
                histories, reasons, steps, extras_get,
            )

    # Points that ran out of budget: frozen as non-converged, like the
    # scalar loop's fall-through return.
    for pos, idx in enumerate(active):
        res = histories[idx][-1] if histories[idx] else np.inf
        results[idx] = SolveResult(
            fields.extract(pos), steps, res, False, list(histories[idx])
        )
    return BatchSolveResult(results=list(results), diverged=reasons)


class BatchedTHIIMSolver:
    """THIIM over ``k`` wavelengths of one scene in a single sweep loop.

    Builds one ordinary :class:`THIIMSolver` per lane (identical
    construction path, hence bit-identical coefficients -- ``sigma`` is
    omega-dependent, so rasterization genuinely differs per lane), then
    stacks fields and coefficients into ``12 x k`` / ``28 x k`` arrays
    the kernels update in one pass over the shared stencil working set.

    The per-lane solvers stay available as ``self.lanes`` -- the batched
    checkpoint token hashes each lane's scalar token, and diagnostics can
    drop to a single lane.
    """

    def __init__(
        self,
        grid: Grid,
        omegas: Sequence[float],
        scene: Scene | None = None,
        source: PlaneWaveSource | None = None,
        pml: Mapping[str, PMLSpec] | None = None,
        tau: float | None = None,
        supersample: int = 1,
    ) -> None:
        omegas = [float(w) for w in omegas]
        if not omegas:
            raise ValueError("need at least one omega")
        self.grid = grid
        self.omegas = omegas
        self.scene = scene
        self.lanes = [
            THIIMSolver(grid, w, scene=scene, source=source, pml=pml,
                        tau=tau, supersample=supersample)
            for w in omegas
        ]
        self.fields = BatchedFieldState.stack([lane.fields for lane in self.lanes])
        self.coefficients = BatchedCoefficientSet.stack(
            [lane.coefficients for lane in self.lanes]
        )

    @property
    def batch_width(self) -> int:
        return len(self.omegas)

    def reset(self) -> None:
        """Zero all lanes and restore any compacted-away ones."""
        self.fields = BatchedFieldState(self.grid, width=self.batch_width)
        self.coefficients = BatchedCoefficientSet.stack(
            [lane.coefficients for lane in self.lanes]
        )

    def solve(
        self,
        tol: float = 1e-6,
        max_steps: int = 5000,
        check_every: int = 20,
        checkpoint=None,
    ) -> BatchSolveResult:
        """Iterate all lanes to convergence with per-point masking.

        Every lane's result is bit-identical to a scalar
        :meth:`THIIMSolver.solve` of that point with the same ``tol`` /
        ``max_steps`` / ``check_every`` -- the property tests assert it,
        staggered convergence included.
        """
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        return run_batched_loop(
            self.fields,
            self.coefficients,
            advance=lambda n: naive_sweep(self.fields, self.coefficients, n),
            step_size=lambda steps: min(check_every, max_steps - steps),
            tol=tol,
            max_steps=max_steps,
            checkpoint=checkpoint,
        )
