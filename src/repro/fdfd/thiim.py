"""THIIM solver driver.

Ties the substrate together: grid + scene + PML + sources -> coefficient
arrays -> iterate the twelve-component kernel until the fields converge to
the time-harmonic solution.  The driver can run the naive sweep, the
spatially blocked sweep, or (through :class:`repro.core.executor`) a
wavefront-diamond tiled traversal -- all numerically equivalent.

The *inverse iteration* view: the leapfrog scheme with the ``e^{i w tau}``
phase factors is a fixed-point iteration whose fixed point satisfies the
discrete frequency-domain Maxwell equations (Eqs. 6-7 of the paper).
Cells with negative real permittivity take the back iteration (Eq. 5),
which keeps the spectral radius below one for metals -- the property that
makes silver back contacts tractable without auxiliary differential
equations.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Callable, Mapping

import numpy as np

from ..resilience import faults
from ..resilience.errors import SolverDiverged
from .coefficients import CoefficientSet, build_coefficients
from .fields import FieldState
from .geometry import Scene
from .grid import Grid
from .kernels import naive_sweep, spatial_blocked_sweep, step
from .observables import relative_change
from .pml import PMLSpec
from .sources import PlaneWaveSource

__all__ = ["SolveResult", "THIIMSolver", "divergence_reason"]

#: Residual blow-up policy: diverged once the residual grew for this many
#: consecutive checks AND sits this far above the best residual seen.  A
#: healthy inverse iteration decreases (roughly) monotonically; a spectral
#: radius above one grows geometrically and trips this within a few checks
#: instead of burning the whole ``max_steps`` budget.
_BLOWUP_RUN = 3
_BLOWUP_FACTOR = 1e4


def divergence_reason(res: float, history: list[float]) -> str | None:
    """Why the iteration counts as diverged, or ``None`` while healthy."""
    if not np.isfinite(res):
        return "non-finite residual (NaN/Inf in the fields)"
    if len(history) > _BLOWUP_RUN:
        tail = history[-(_BLOWUP_RUN + 1):]
        if all(b > a for a, b in zip(tail, tail[1:])) and \
                res > _BLOWUP_FACTOR * min(history):
            return (f"residual blow-up ({_BLOWUP_RUN} consecutive increases, "
                    f"{res:.3e} vs best {min(history):.3e})")
    return None


@dataclass
class SolveResult:
    """Outcome of a THIIM run."""

    fields: FieldState
    iterations: int
    residual: float
    converged: bool
    residual_history: list[float] = dc_field(default_factory=list)


class THIIMSolver:
    """Time Harmonic Inverse Iteration Method driver.

    Parameters
    ----------
    grid:
        Simulation grid.
    omega:
        Angular frequency of the illumination (normalized units, vacuum
        wavelength ``2 pi / omega`` in grid-length units).
    scene:
        Optional material scene; vacuum if omitted.
    source:
        Optional plane-wave source.
    pml:
        Per-axis PML specs (typically ``{"z": PMLSpec(...)}`` with
        periodic x/y, mirroring the production setup).
    tau:
        Time step; defaults to the CFL-stable step of the grid.  The CFL
        limit is evaluated with the maximum wave speed in the scene.
    supersample:
        FIT-style supersampling factor for rasterizing curved interfaces.
    """

    def __init__(
        self,
        grid: Grid,
        omega: float,
        scene: Scene | None = None,
        source: PlaneWaveSource | None = None,
        pml: Mapping[str, PMLSpec] | None = None,
        tau: float | None = None,
        supersample: int = 1,
    ) -> None:
        self.grid = grid
        self.omega = omega
        self.scene = scene
        self.source = source

        if scene is not None:
            self.eps, self.sigma = scene.rasterize(grid, omega, supersample=supersample)
        else:
            self.eps = np.ones(grid.shape, dtype=np.float64)
            self.sigma = np.zeros(grid.shape, dtype=np.float64)

        if tau is None:
            # Wave speed is 1/sqrt(eps mu); eps < 1 (but > 0) raises the
            # speed, metals (eps < 0) are evanescent and do not constrain
            # the CFL step.
            pos = self.eps[self.eps > 0]
            max_speed = float(1.0 / np.sqrt(np.min(pos))) if pos.size else 1.0
            tau = grid.cfl_time_step(light_speed=max(max_speed, 1.0))
        self.tau = tau

        if source is not None:
            if source.z_width > 0 and source.wavenumber is None:
                # Default phasing for a thick source: vacuum dispersion.
                from dataclasses import replace

                source = replace(source, wavenumber=omega)
            raw_sources = source.build(grid)
        else:
            raw_sources = None
        self.coefficients: CoefficientSet = build_coefficients(
            grid,
            omega,
            self.tau,
            eps=self.eps,
            sigma=self.sigma,
            pml=pml,
            sources=raw_sources,
        )
        self.fields = FieldState(grid)

    # -- stepping ----------------------------------------------------------------

    def reset(self) -> None:
        """Zero the fields (restart the inverse iteration)."""
        self.fields = FieldState(self.grid)

    def run(self, nsteps: int, traversal: str = "naive", **kw) -> FieldState:
        """Advance ``nsteps`` time steps with a chosen traversal.

        ``traversal`` is ``"naive"`` or ``"spatial"`` here; the diamond
        traversal lives in :class:`repro.core.executor.TiledExecutor`
        (which operates on the same ``fields``/``coefficients``).
        """
        if traversal == "naive":
            naive_sweep(self.fields, self.coefficients, nsteps)
        elif traversal == "spatial":
            spatial_blocked_sweep(
                self.fields, self.coefficients, nsteps, kw.pop("block_y", 16), kw.pop("block_z", None)
            )
        else:
            raise ValueError(f"unknown traversal {traversal!r}")
        return self.fields

    def solve(
        self,
        tol: float = 1e-6,
        max_steps: int = 5000,
        check_every: int = 20,
        callback: Callable[[int, float], None] | None = None,
        checkpoint=None,
        on_divergence: str = "return",
    ) -> SolveResult:
        """Iterate until the fields converge to the time-harmonic solution.

        Convergence is measured as the relative change of the electric
        components over ``check_every`` steps, normalized per step.

        ``checkpoint`` is an optional
        :class:`~repro.resilience.checkpoint.CheckpointManager`: the loop
        resumes from its snapshot (bit-identically -- the sweep sequence
        is deterministic) and re-snapshots on the manager's cadence.
        ``on_divergence`` is ``"return"`` (a non-converged
        :class:`SolveResult`, the historical behaviour) or ``"raise"``
        (:class:`~repro.resilience.errors.SolverDiverged` with a
        diagnostic payload -- what the solve service uses to fail jobs
        fast instead of iterating a blown-up state to ``max_steps``).
        """
        if tol <= 0:
            raise ValueError("tol must be positive")
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        if on_divergence not in ("return", "raise"):
            raise ValueError("on_divergence must be 'return' or 'raise'")
        history: list[float] = []
        steps = 0
        if checkpoint is not None:
            restored = checkpoint.resume(self.fields)
            if restored is not None:
                steps = restored.steps
                history = list(restored.history)
        previous = self.fields.copy()
        while steps < max_steps:
            n = min(check_every, max_steps - steps)
            faults.hit("solver.sweep")
            naive_sweep(self.fields, self.coefficients, n)
            steps += n
            res = relative_change(self.fields, previous) / n
            history.append(res)
            if callback is not None:
                callback(steps, res)
            reason = divergence_reason(res, history)
            if reason is not None:
                if on_divergence == "raise":
                    raise SolverDiverged(
                        f"THIIM iteration diverged after {steps} steps: {reason}",
                        steps=steps, residual=float(res),
                        history_tail=[float(r) for r in history[-6:]])
                return SolveResult(self.fields, steps, res, False, history)
            if res < tol:
                return SolveResult(self.fields, steps, res, True, history)
            previous = self.fields.copy()
            if checkpoint is not None and checkpoint.due(steps):
                checkpoint.save(self.fields, steps, history)
        return SolveResult(self.fields, steps, history[-1] if history else np.inf, False, history)

    # -- diagnostics ----------------------------------------------------------------

    def frequency_domain_residual(self) -> float:
        """Residual of the discrete frequency-domain equations.

        At the THIIM fixed point one full time step leaves the fields
        invariant up to the analytic phase advance.  We measure
        ``|step(F) - F| / |F|`` over all components, which tends to zero as
        the iteration converges (and is exactly the fixed-point defect of
        the inverse iteration).
        """
        snapshot = self.fields.copy()
        step(self.fields, self.coefficients)
        num = 0.0
        den = 0.0
        for name in self.fields:
            d = self.fields[name] - snapshot[name]
            num += float(np.sum(np.abs(d) ** 2))
            den += float(np.sum(np.abs(snapshot[name]) ** 2))
        # Roll back so the diagnostic is side-effect free.
        for name in self.fields:
            self.fields[name] = snapshot[name]
        if den == 0.0:
            return 0.0 if num == 0.0 else np.inf
        return float(np.sqrt(num / den))

    def material_mask(self, name: str) -> np.ndarray:
        """Boolean mask of the cells occupied by a named material."""
        if self.scene is None:
            raise ValueError("solver has no scene")
        ids, palette = self.scene.material_id_map(self.grid)
        mask = np.zeros(self.grid.shape, dtype=bool)
        for mid, mat in enumerate(palette):
            if mat.name == name:
                mask |= ids == mid
        return mask
