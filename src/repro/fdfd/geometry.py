"""Scene construction: layer stacks, textured interfaces, nano-particles.

The paper's Fig. 1 shows the motivating workload: a tandem thin-film solar
cell -- a stack of layers along the vertical (z) axis with *textured*
(rough) interfaces for light trapping and SiO2 nano-particles embedded near
the silver back contact for additional scattering.  The production code
obtains rough interfaces from atomic-force-microscopy height maps and maps
material data onto the structured grid with the Finite Integration
Technique (FIT).

We reproduce the same capability with synthetic height maps: a scene is a
background material, an ordered list of layers (each claiming a z-range
whose lower boundary may be displaced by a height map over (y, x)), and a
list of spherical inclusions.  Rasterization onto the structured grid uses
optional supersampling to approximate the FIT volume-fraction averaging of
material data in boundary cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .grid import Grid
from .materials import Material, VACUUM

__all__ = ["Layer", "Sphere", "Scene", "sinusoidal_texture", "rough_texture"]

#: A height map assigns a z-displacement (in cells) to every (y, x) column.
HeightMap = Callable[[np.ndarray, np.ndarray], np.ndarray]


def sinusoidal_texture(amplitude: float, period_y: float, period_x: float, phase: float = 0.0) -> HeightMap:
    """Deterministic etched-surface texture (crossed sinusoids).

    A cheap stand-in for the etched light-trapping textures of Fig. 1:
    smooth, periodic, controllable amplitude -- adequate to exercise the
    curved-interface rasterization path.
    """

    def height(y: np.ndarray, x: np.ndarray) -> np.ndarray:
        return amplitude * (
            np.sin(2 * np.pi * y / period_y + phase) * np.cos(2 * np.pi * x / period_x)
        )

    return height


def rough_texture(amplitude: float, correlation: int, seed: int = 0) -> HeightMap:
    """Random rough surface with a given lateral correlation length.

    Generates band-limited Gaussian roughness, mimicking the statistics of
    an AFM-measured etched surface.  Deterministic for a fixed seed.
    """
    if correlation < 1:
        raise ValueError("correlation length must be >= 1 cell")

    def height(y: np.ndarray, x: np.ndarray) -> np.ndarray:
        ny = int(np.max(y)) + 1
        nx = int(np.max(x)) + 1
        rng = np.random.default_rng(seed)
        noise = rng.standard_normal((ny, nx))
        # Low-pass filter in Fourier space at the correlation wavelength.
        fy = np.fft.fftfreq(ny)[:, None]
        fx = np.fft.fftfreq(nx)[None, :]
        keep = np.exp(-((fy**2 + fx**2) * (correlation**2) * (2 * np.pi**2)))
        smooth = np.fft.ifft2(np.fft.fft2(noise) * keep).real
        rms = np.sqrt(np.mean(smooth**2))
        if rms > 0:
            smooth *= amplitude / rms
        return smooth[y.astype(int) % ny, x.astype(int) % nx]

    return height


@dataclass(frozen=True)
class Layer:
    """A material slab ``z in [z_low, z_high)`` with an optional textured
    lower interface.

    The texture displaces the *lower* boundary of the layer cell-column by
    cell-column, so stacking layers with textures produces the conformal
    rough interfaces of the tandem-cell cross section.
    """

    material: Material
    z_low: float
    z_high: float
    texture: HeightMap | None = None

    def __post_init__(self) -> None:
        if self.z_high <= self.z_low:
            raise ValueError(f"layer {self.material.name}: empty z range")


@dataclass(frozen=True)
class Sphere:
    """A spherical inclusion (e.g. an SiO2 scattering nano-particle)."""

    material: Material
    center: tuple[float, float, float]  # (z, y, x) in cell units
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("sphere radius must be positive")


@dataclass
class Scene:
    """A simulation scene: background + layers + spherical inclusions.

    Later entries win: layers are painted in list order, spheres afterwards.
    """

    background: Material = VACUUM
    layers: list[Layer] = field(default_factory=list)
    spheres: list[Sphere] = field(default_factory=list)

    def add_layer(self, material: Material, z_low: float, z_high: float, texture: HeightMap | None = None) -> "Scene":
        self.layers.append(Layer(material, z_low, z_high, texture))
        return self

    def add_sphere(self, material: Material, center: tuple[float, float, float], radius: float) -> "Scene":
        self.spheres.append(Sphere(material, center, radius))
        return self

    # -- rasterization -----------------------------------------------------

    def material_id_map(self, grid: Grid) -> tuple[np.ndarray, list[Material]]:
        """Rasterize the scene to a per-cell material index.

        Returns ``(ids, palette)`` where ``ids`` has shape ``grid.shape``
        and ``palette[ids[c]]`` is the material of cell ``c``.  Cell
        membership is evaluated at the cell center (supersampled averaging
        happens later, on the permittivity itself).
        """
        palette: list[Material] = [self.background]
        ids = np.zeros(grid.shape, dtype=np.int16)
        iy, ix = np.meshgrid(np.arange(grid.ny), np.arange(grid.nx), indexing="ij")
        zc = np.arange(grid.nz, dtype=np.float64) + 0.5
        for layer in self.layers:
            palette.append(layer.material)
            mid = len(palette) - 1
            low = np.full((grid.ny, grid.nx), layer.z_low, dtype=np.float64)
            if layer.texture is not None:
                low = low + layer.texture(iy.astype(np.float64), ix.astype(np.float64))
            inside = (zc[:, None, None] >= low[None, :, :]) & (zc[:, None, None] < layer.z_high)
            ids[inside] = mid
        if self.spheres:
            zz, yy, xx = np.meshgrid(
                np.arange(grid.nz) + 0.5,
                np.arange(grid.ny) + 0.5,
                np.arange(grid.nx) + 0.5,
                indexing="ij",
            )
            for sph in self.spheres:
                palette.append(sph.material)
                mid = len(palette) - 1
                cz, cy, cx = sph.center
                inside = (zz - cz) ** 2 + (yy - cy) ** 2 + (xx - cx) ** 2 <= sph.radius**2
                ids[inside] = mid
        return ids, palette

    def rasterize(self, grid: Grid, omega: float, supersample: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Produce per-cell ``(eps, sigma)`` arrays.

        Parameters
        ----------
        supersample:
            Linear supersampling factor per axis; ``supersample > 1``
            averages the complex permittivity over sub-cell samples, the
            FIT-style treatment of curved interfaces (a cell straddling a
            material boundary receives the volume-weighted permittivity).

        Returns
        -------
        (eps, sigma):
            Real permittivity (may be negative inside metals) and
            conductivity arrays of shape ``grid.shape``.
        """
        if supersample < 1:
            raise ValueError("supersample must be >= 1")
        if supersample == 1:
            ids, palette = self.material_id_map(grid)
            eps_of = np.array([m.eps_real for m in palette])
            sig_of = np.array([m.sigma(omega) for m in palette])
            return eps_of[ids], sig_of[ids]

        # Volume-fraction averaging: accumulate complex permittivity over
        # shifted sub-grids, then split back into (eps, sigma).
        acc = np.zeros(grid.shape, dtype=np.complex128)
        n = supersample
        # Evaluate on an n-times finer grid and box-average.
        fine = Grid(grid.nz * n, grid.ny * n, grid.nx * n,
                    grid.dz / n, grid.dy / n, grid.dx / n, grid.periodic)
        scaled = self._scaled(n)
        ids, palette = scaled.material_id_map(fine)
        ceps_of = np.array([m.complex_eps(omega) for m in palette])
        fine_eps = ceps_of[ids]
        acc = fine_eps.reshape(grid.nz, n, grid.ny, n, grid.nx, n).mean(axis=(1, 3, 5))
        eps = acc.real
        sigma = -acc.imag * omega
        return eps, sigma

    def _scaled(self, n: int) -> "Scene":
        """The same scene with all cell-unit geometry scaled by ``n``."""
        out = Scene(background=self.background)
        for layer in self.layers:
            tex = layer.texture
            if tex is not None:
                orig = tex

                def scaled_tex(y, x, _orig=orig, _n=n):
                    return _n * _orig(y / _n, x / _n)

                tex = scaled_tex
            out.add_layer(layer.material, layer.z_low * n, layer.z_high * n, tex)
        for sph in self.spheres:
            cz, cy, cx = sph.center
            out.add_sphere(sph.material, (cz * n, cy * n, cx * n), sph.radius * n)
        return out

    def material_volume_fractions(self, grid: Grid) -> dict[str, float]:
        """Fraction of grid cells occupied by each material (diagnostics)."""
        ids, palette = self.material_id_map(grid)
        total = ids.size
        fractions: dict[str, float] = {}
        for mid, mat in enumerate(palette):
            count = int(np.sum(ids == mid))
            if count:
                fractions[mat.name] = fractions.get(mat.name, 0.0) + count / total
        return fractions
