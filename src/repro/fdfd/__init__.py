"""THIIM / FDFD electromagnetics substrate.

The production workload of the paper: a Maxwell solver using the Time
Harmonic Inverse Iteration Method with split-field PML on a staggered Yee
grid -- twelve field components and twenty-eight coefficient arrays per
cell.  See DESIGN.md section 3.1 for the module inventory.
"""

from .coefficients import (
    BatchedCoefficientSet,
    CoefficientSet,
    build_coefficients,
    random_coefficients,
)
from .fields import BatchedFieldState, FieldState
from .geometry import Layer, Scene, Sphere, rough_texture, sinusoidal_texture
from .grid import Grid
from .kernels import (
    clip_region,
    naive_sweep,
    spatial_blocked_sweep,
    step,
    update_component,
    update_e,
    update_h,
)
from .materials import (
    A_SI_H,
    AIR,
    GLASS,
    MATERIAL_LIBRARY,
    SILVER,
    SIO2,
    TCO_ZNO,
    UC_SI_H,
    VACUUM,
    Material,
)
from .observables import (
    absorbed_power,
    absorption_density,
    field_energy,
    poynting_flux_z,
    poynting_z,
    relative_change,
)
from .pml import PMLSpec, pml_profile
from .sources import PlaneWaveSource, gaussian_beam_profile
from .specs import (
    ALL_COMPONENTS,
    BYTES_PER_CELL,
    E_COMPONENTS,
    FLOPS_PER_LUP,
    H_COMPONENTS,
    SOURCE_COMPONENTS,
    SPECS,
    ComponentSpec,
    component_groups,
    flops_for_component,
)
from .presets import PRESETS, preset_scene
from .thiim import BatchedTHIIMSolver, BatchSolveResult, SolveResult, THIIMSolver

__all__ = [
    "ALL_COMPONENTS",
    "A_SI_H",
    "AIR",
    "BYTES_PER_CELL",
    "BatchSolveResult",
    "BatchedCoefficientSet",
    "BatchedFieldState",
    "BatchedTHIIMSolver",
    "CoefficientSet",
    "ComponentSpec",
    "E_COMPONENTS",
    "FLOPS_PER_LUP",
    "FieldState",
    "GLASS",
    "Grid",
    "H_COMPONENTS",
    "Layer",
    "MATERIAL_LIBRARY",
    "Material",
    "PMLSpec",
    "PRESETS",
    "PlaneWaveSource",
    "SILVER",
    "SIO2",
    "SOURCE_COMPONENTS",
    "SPECS",
    "Scene",
    "SolveResult",
    "Sphere",
    "THIIMSolver",
    "TCO_ZNO",
    "UC_SI_H",
    "VACUUM",
    "absorbed_power",
    "absorption_density",
    "build_coefficients",
    "clip_region",
    "component_groups",
    "field_energy",
    "flops_for_component",
    "gaussian_beam_profile",
    "naive_sweep",
    "pml_profile",
    "poynting_flux_z",
    "preset_scene",
    "poynting_z",
    "random_coefficients",
    "relative_change",
    "rough_texture",
    "sinusoidal_texture",
    "spatial_blocked_sweep",
    "step",
    "update_component",
    "update_e",
    "update_h",
]
