"""Source terms: plane-wave injection for the THIIM iteration.

The solar-cell workload illuminates the stack from above with a
monochromatic plane wave travelling along -z (or +z).  In THIIM the time
dependence ``e^{i w t}`` is factored out, so the source amplitudes ``S_E``
and ``S_H`` are *static* complex arrays; they are carried by the four
components whose updates difference along z (``SrcEx``, ``SrcEy``,
``SrcHx``, ``SrcHy`` -- exactly the four three-coefficient kernels of the
paper's Listing 1 count).

The injection is a "soft" current source on a single z-plane: it adds a
transverse E/H pair with the impedance relation of a travelling wave so
that radiation is launched predominantly in one direction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .grid import Grid

__all__ = ["PlaneWaveSource", "gaussian_beam_profile"]


def gaussian_beam_profile(grid: Grid, waist_cells: float, center: tuple[float, float] | None = None) -> np.ndarray:
    """Transverse Gaussian amplitude profile over the (y, x) plane.

    Useful to localize the excitation (e.g. to illuminate a single
    nano-wire) while keeping the plane-source machinery unchanged.
    """
    if waist_cells <= 0:
        raise ValueError("waist must be positive")
    cy, cx = center if center is not None else ((grid.ny - 1) / 2.0, (grid.nx - 1) / 2.0)
    y = np.arange(grid.ny, dtype=np.float64)[:, None]
    x = np.arange(grid.nx, dtype=np.float64)[None, :]
    r2 = (y - cy) ** 2 + (x - cx) ** 2
    return np.exp(-r2 / waist_cells**2)


@dataclass(frozen=True)
class PlaneWaveSource:
    """A monochromatic plane wave injected on one z-plane.

    Parameters
    ----------
    z_plane:
        Grid index of the injection plane (put it between the top PML and
        the device stack).
    amplitude:
        Peak electric-field amplitude (complex allowed; the phase sets the
        source phase).
    polarization:
        ``"x"`` or ``"y"`` -- direction of the electric field.
    direction:
        ``+1`` to launch toward increasing z (down into the stack in our
        examples), ``-1`` for the opposite.
    impedance:
        Wave impedance of the injection medium (1 in normalized vacuum
        units); sets the H/E amplitude ratio.
    profile:
        Optional transverse (ny, nx) amplitude profile (default uniform).
    z_width:
        Gaussian half-width (in cells) of the injection region along z.
        ``0`` injects on the single plane ``z_plane``.  A smooth, *phased*
        injection (each plane carries the travelling-wave phase
        ``e^{-i k (z - z0) direction}``) avoids exciting the
        zero-group-velocity band-edge modes of the discrete grid that a
        hard delta-in-z source pins at the source plane forever.
    wavenumber:
        Propagation constant used for the phasing of a thick source;
        defaults to ``omega`` in normalized vacuum units and must be set
        explicitly when injecting inside a dielectric.
    """

    z_plane: int
    amplitude: complex = 1.0
    polarization: str = "x"
    direction: int = +1
    impedance: float = 1.0
    profile: np.ndarray | None = None
    z_width: float = 0.0
    wavenumber: float | None = None

    def __post_init__(self) -> None:
        if self.polarization not in ("x", "y"):
            raise ValueError("polarization must be 'x' or 'y'")
        if self.direction not in (-1, +1):
            raise ValueError("direction must be +1 or -1")
        if self.impedance <= 0:
            raise ValueError("impedance must be positive")
        if self.z_width < 0:
            raise ValueError("z_width must be >= 0")

    def build(self, grid: Grid) -> dict[str, np.ndarray]:
        """Raw source amplitude arrays keyed by coefficient name.

        For an x-polarized wave travelling along +z the field pair is
        ``(Ex, Hy)`` with ``Hy = Ex / impedance``; for y-polarization the
        pair is ``(Ey, Hx)`` with ``Hx = -Ey / impedance``.  Flipping the
        propagation direction flips the magnetic amplitude.
        """
        if not (0 <= self.z_plane < grid.nz):
            raise ValueError(f"z_plane {self.z_plane} outside grid of {grid.nz} planes")
        prof = self.profile
        if prof is None:
            prof = np.ones((grid.ny, grid.nx), dtype=np.float64)
        elif prof.shape != (grid.ny, grid.nx):
            raise ValueError(f"profile shape {prof.shape} != {(grid.ny, grid.nx)}")

        e_plane = np.zeros(grid.shape, dtype=np.complex128)
        h_plane = np.zeros(grid.shape, dtype=np.complex128)
        e_amp = self.amplitude
        h_amp = self.amplitude / self.impedance * self.direction
        if self.z_width == 0.0:
            e_plane[self.z_plane, :, :] = e_amp * prof
            h_plane[self.z_plane, :, :] = h_amp * prof
        else:
            k = self.wavenumber
            if k is None:
                raise ValueError("a thick source (z_width > 0) needs a wavenumber")
            z = np.arange(grid.nz, dtype=np.float64)
            envelope = np.exp(-((z - self.z_plane) ** 2) / self.z_width**2)
            envelope[envelope < 1e-12] = 0.0
            phase = np.exp(-1j * self.direction * k * (z - self.z_plane) * grid.dz)
            zprof = (envelope * phase)[:, None, None]
            e_plane[...] = e_amp * zprof * prof[None, :, :]
            h_plane[...] = h_amp * zprof * prof[None, :, :]

        if self.polarization == "x":
            return {"SrcEx": e_plane, "SrcHy": h_plane}
        return {"SrcEy": e_plane, "SrcHx": -h_plane}
