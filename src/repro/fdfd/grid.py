"""Structured Yee grid descriptor.

The simulation domain is a rectangular box discretized on a staggered
(Yee) grid.  Arrays are laid out ``(nz, ny, nx)`` with

* ``z`` the outer dimension (wavefront traversal in the MWD scheme),
* ``y`` the middle dimension (diamond tiling),
* ``x`` the inner, contiguous dimension (intra-tile thread split).

All twelve split-field component arrays share this shape; the staggering
is carried implicitly by the index-shift convention of
:mod:`repro.fdfd.specs` (H reads E at ``+1``, E reads H at ``-1`` along the
derivative axis), exactly as in the paper's kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Grid"]


@dataclass(frozen=True)
class Grid:
    """Rectangular structured grid.

    Parameters
    ----------
    nz, ny, nx:
        Number of grid cells along each axis (z outer ... x inner).
    dz, dy, dx:
        Grid spacing along each axis, in simulation length units
        (normalized units with vacuum light speed c = 1 are used throughout
        the library).
    periodic:
        Per-axis periodicity flags ``(z, y, x)``.  The paper's benchmark
        configuration is fully non-periodic (homogeneous Dirichlet); the
        production solar-cell configuration is periodic in x and y with PML
        along z.
    """

    nz: int
    ny: int
    nx: int
    dz: float = 1.0
    dy: float = 1.0
    dx: float = 1.0
    periodic: tuple[bool, bool, bool] = (False, False, False)

    def __post_init__(self) -> None:
        for n, label in ((self.nz, "nz"), (self.ny, "ny"), (self.nx, "nx")):
            if n < 3:
                raise ValueError(f"{label} must be >= 3, got {n}")
        for d, label in ((self.dz, "dz"), (self.dy, "dy"), (self.dx, "dx")):
            if d <= 0:
                raise ValueError(f"{label} must be positive, got {d}")

    @classmethod
    def cube(cls, n: int, spacing: float = 1.0, **kw) -> "Grid":
        """Cubic grid of ``n**3`` cells (the paper's benchmark domains)."""
        return cls(nz=n, ny=n, nx=n, dz=spacing, dy=spacing, dx=spacing, **kw)

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.nz, self.ny, self.nx)

    @property
    def n_cells(self) -> int:
        return self.nz * self.ny * self.nx

    @property
    def spacing(self) -> tuple[float, float, float]:
        return (self.dz, self.dy, self.dx)

    def axis_len(self, axis: int) -> int:
        return self.shape[axis]

    def zeros(self, dtype=np.complex128) -> np.ndarray:
        """A zero-initialized domain-sized array."""
        return np.zeros(self.shape, dtype=dtype)

    def full(self, value, dtype=np.complex128) -> np.ndarray:
        """A constant domain-sized array."""
        return np.full(self.shape, value, dtype=dtype)

    def cfl_time_step(self, cfl: float = 0.5, light_speed: float = 1.0) -> float:
        """Stable time step for the leapfrog update.

        The Yee scheme is stable for ``tau <= 1 / (c * sqrt(sum 1/d_i^2))``;
        the default safety factor 0.5 keeps the THIIM iteration comfortably
        inside the stability region even with the complex phase factors.
        """
        if not (0 < cfl <= 1):
            raise ValueError(f"cfl must be in (0, 1], got {cfl}")
        inv = np.sqrt(1.0 / self.dz**2 + 1.0 / self.dy**2 + 1.0 / self.dx**2)
        return cfl / (light_speed * inv)

    def interior_range(self, axis: int, shift: int) -> tuple[int, int]:
        """Valid update index range ``[lo, hi)`` for a non-periodic axis.

        A component whose far read is at ``i + shift`` can only be updated
        where that read stays in bounds; the skipped boundary cells hold the
        homogeneous Dirichlet values.  Periodic axes are updated over the
        full range (reads wrap around).
        """
        n = self.axis_len(axis)
        if self.periodic[axis] or shift == 0:
            return (0, n)
        if shift > 0:
            return (0, n - shift)
        return (-shift, n)

    def memory_bytes(self, arrays: int = 40, bytes_per_number: int = 16) -> int:
        """Total state size: 40 double-complex arrays = 640 B/cell."""
        return self.n_cells * arrays * bytes_per_number
