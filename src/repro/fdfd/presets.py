"""Named scene presets shared by the CLI and the solve service.

``repro solve`` and service :class:`~repro.service.jobs.JobSpec` runs
must produce bit-identical fields for the same parameters, so both build
their scenes through :func:`preset_scene` -- a single construction path
instead of two copies of the layer arithmetic.

The optional ``thickness`` parameter is the campaign knob of the paper's
solar-cell use case ("about 80-160 simulations ... for only a single
solar cell configuration"): it scales the *absorber* layer as a fraction
of the domain height, so a ``repro campaign`` can sweep layer thickness
x wavelength.  ``thickness=None`` reproduces the historical fixed
geometry exactly (same integer arithmetic), keeping existing solves
unchanged.
"""

from __future__ import annotations

from typing import Optional

from .geometry import Scene
from .materials import A_SI_H, SILVER, TCO_ZNO, UC_SI_H

__all__ = ["PRESETS", "preset_scene"]

#: The presets ``repro solve --preset`` and job specs accept.
PRESETS = ("vacuum", "absorber", "mirror", "tandem")


def _span(nz: int, start_frac: float, thickness: float) -> tuple[int, int]:
    z0 = int(start_frac * nz)
    z1 = min(nz, z0 + max(1, round(thickness * nz)))
    return z0, z1


def preset_scene(
    preset: str, nz: int, thickness: Optional[float] = None
) -> Optional[Scene]:
    """Build the named preset scene for a domain of ``nz`` cells.

    Returns ``None`` for ``vacuum`` (no scene; free-space propagation).
    ``thickness`` (a fraction of ``nz``, in ``(0, 0.4]``) scales the
    absorber layer of the ``absorber`` and ``tandem`` presets.
    """
    if preset not in PRESETS:
        raise ValueError(f"unknown preset {preset!r}, expected one of {PRESETS}")
    if thickness is not None and not (0.0 < thickness <= 0.4):
        raise ValueError("thickness must be a fraction of nz in (0, 0.4]")

    if preset == "vacuum":
        return None
    if preset == "absorber":
        if thickness is None:
            return Scene().add_layer(A_SI_H, nz // 2, nz - nz // 4)
        z0, z1 = _span(nz, 0.5, thickness)
        return Scene().add_layer(A_SI_H, z0, z1)
    if preset == "mirror":
        return Scene().add_layer(SILVER, nz - nz // 3, nz)

    # tandem: the Fig. 1 stack; ``thickness`` scales the uc-Si:H bottom
    # absorber (the photocurrent-limiting layer a real sweep optimizes).
    scene = Scene().add_layer(TCO_ZNO, int(0.30 * nz), int(0.36 * nz))
    scene.add_layer(A_SI_H, int(0.36 * nz), int(0.44 * nz))
    if thickness is None:
        scene.add_layer(UC_SI_H, int(0.44 * nz), int(0.70 * nz))
    else:
        z0, z1 = _span(nz, 0.44, thickness)
        scene.add_layer(UC_SI_H, z0, z1)
    scene.add_layer(SILVER, int(0.74 * nz), nz)
    return scene
