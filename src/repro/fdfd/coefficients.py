"""Precomputation of the 28 domain-sized THIIM coefficient arrays.

The THIIM update of every split-field component has the two- or
three-coefficient form of the paper's Listings 1 and 2::

    F_new = t * (curl difference) + c * F_old (+ src)

This module derives ``t``, ``c`` and ``src`` per component from the
discretized scheme (Eqs. 3-5 of the paper) so that the kernels stay the
simple bandwidth-bound streaming loops the paper analyzes.

Derivation
----------
Electric field, *forward* iteration (Eq. 3), solved for ``E^{n+1}`` with
split-axis conductivity ``sigma_a`` (PML profile of the derivative axis
plus the material conductivity)::

    E^{n+1} = D * E^n  +  D * (tau / (eps * d_a)) * e^{i w tau / 2} * dH
              +  D * tau * S_E,
    D = e^{-i w tau} / (1 + tau * sigma_a / eps)

Electric field, *back* iteration (Eq. 5) on cells with negative real
permittivity (metals, e.g. the silver back contact)::

    E^{n+1} = B * e^{i w tau} * E^n  -  B * (tau / (eps * d_a)) *
              e^{i w tau / 2} * dH  -  B * tau * S_E,
    B = 1 / (1 - tau * sigma_a / eps)

Magnetic field (Eq. 4), with matched PML magnetic conductivity
``sigma*_a`` (equal to the electric profile in normalized units)::

    H^{n+1/2} = (e^{-i w tau / 2} / Q) * H^{n-1/2}
                + (tau / (mu * d_a) / Q) * dE  +  (tau / Q) * S_H,
    Q = e^{i w tau / 2} + tau * sigma*_a / mu

Stability: for metals the back iteration gives ``|c| = 1/|1 - tau
sigma/eps| < 1`` (damped) where the forward iteration would be amplifying
-- this is the numerical-stability property THIIM is built around, and it
is covered by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from .grid import Grid
from .pml import PMLSpec, pml_profile
from .specs import (
    ALL_COMPONENTS,
    AXIS_NAMES,
    COEFF_ARRAY_COUNT,
    SPECS,
    ComponentSpec,
)

__all__ = [
    "CoefficientSet",
    "BatchedCoefficientSet",
    "build_coefficients",
    "random_coefficients",
]


@dataclass
class CoefficientSet:
    """The 28 coefficient arrays plus scheme metadata.

    ``arrays`` maps coefficient names (``tExy``, ``cExy``, ..., ``SrcHy``)
    to domain-sized complex128 arrays.  Every coefficient is stored
    domain-sized even where it is spatially constant -- that is the memory
    layout of the production code and the entire point of the paper's
    traffic analysis (640 bytes of state per cell).
    """

    grid: Grid
    omega: float
    tau: float
    arrays: Dict[str, np.ndarray]
    back_mask: np.ndarray | None = None

    def __post_init__(self) -> None:
        expected = {
            name for s in SPECS.values() for name in s.coeff_names
        }
        missing = expected - set(self.arrays)
        if missing:
            raise KeyError(f"missing coefficient arrays: {sorted(missing)}")
        if len(self.arrays) != COEFF_ARRAY_COUNT:
            extra = set(self.arrays) - expected
            raise KeyError(f"unexpected coefficient arrays: {sorted(extra)}")
        for name, a in self.arrays.items():
            if a.shape != self.grid.shape:
                raise ValueError(f"{name}: shape {a.shape} != {self.grid.shape}")

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def t(self, component: str) -> np.ndarray:
        return self.arrays[SPECS[component].coeff_t]

    def c(self, component: str) -> np.ndarray:
        return self.arrays[SPECS[component].coeff_c]

    def src(self, component: str) -> np.ndarray | None:
        s = SPECS[component].source
        return self.arrays[s] if s is not None else None

    def spectral_radius_bound(self) -> float:
        """Max |c| over all components -- a quick stability indicator."""
        return max(float(np.max(np.abs(self.arrays[SPECS[n].coeff_c]))) for n in ALL_COMPONENTS)


class BatchedCoefficientSet:
    """``k`` stacked coefficient sets: 28 arrays of shape ``(k,) + grid.shape``.

    Assembled once per campaign batch (:meth:`stack`) from per-point
    :class:`CoefficientSet` objects that were built through the ordinary
    :func:`build_coefficients` path -- each lane's coefficients are
    therefore bit-identical to the ones an unbatched solve of that point
    would use.  The kernels read the stacked arrays through the same
    ``t``/``c``/``src`` accessors as the scalar set.
    """

    __slots__ = ("grid", "omegas", "taus", "arrays")

    def __init__(self, grid: Grid, omegas: Sequence[float],
                 taus: Sequence[float], arrays: Dict[str, np.ndarray]):
        if len(omegas) != len(taus) or not omegas:
            raise ValueError("need one (omega, tau) pair per lane")
        k = len(omegas)
        expected = {name for s in SPECS.values() for name in s.coeff_names}
        missing = expected - set(arrays)
        if missing:
            raise KeyError(f"missing coefficient arrays: {sorted(missing)}")
        for name, a in arrays.items():
            if a.shape != (k,) + grid.shape:
                raise ValueError(
                    f"{name}: shape {a.shape} != {(k,) + grid.shape}"
                )
        self.grid = grid
        self.omegas = list(omegas)
        self.taus = list(taus)
        self.arrays = arrays

    @classmethod
    def stack(cls, sets: Sequence[CoefficientSet]) -> "BatchedCoefficientSet":
        """One-pass batched assembly: stack per-point sets lane by lane."""
        if not sets:
            raise ValueError("cannot stack an empty sequence of coefficient sets")
        grid = sets[0].grid
        for s in sets:
            if s.grid.shape != grid.shape:
                raise ValueError("all coefficient sets must share one grid shape")
        arrays = {
            name: np.ascontiguousarray(
                np.stack([s.arrays[name] for s in sets])
            )
            for name in sets[0].arrays
        }
        return cls(grid, [s.omega for s in sets], [s.tau for s in sets], arrays)

    @property
    def batch_width(self) -> int:
        return len(self.omegas)

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def t(self, component: str) -> np.ndarray:
        return self.arrays[SPECS[component].coeff_t]

    def c(self, component: str) -> np.ndarray:
        return self.arrays[SPECS[component].coeff_c]

    def src(self, component: str) -> np.ndarray | None:
        s = SPECS[component].source
        return self.arrays[s] if s is not None else None

    def lane(self, i: int) -> CoefficientSet:
        """Zero-copy scalar view of lane ``i``."""
        return CoefficientSet(
            grid=self.grid, omega=self.omegas[i], tau=self.taus[i],
            arrays={n: a[i] for n, a in self.arrays.items()},
        )

    def compact(self, keep: Sequence[int]) -> None:
        """Drop all lanes not in ``keep`` in place (mirror of
        :meth:`BatchedFieldState.compact`)."""
        idx = list(keep)
        if not idx:
            raise ValueError("cannot compact to zero lanes")
        self.arrays = {n: a[idx] for n, a in self.arrays.items()}
        self.omegas = [self.omegas[i] for i in idx]
        self.taus = [self.taus[i] for i in idx]


def _axis_profile(grid: Grid, axis: int, spec: PMLSpec | None, staggered: bool) -> np.ndarray:
    """PML conductivity profile along ``axis`` broadcast to grid shape."""
    n = grid.axis_len(axis)
    prof = pml_profile(n, grid.spacing[axis], spec, staggered=staggered)
    shape = [1, 1, 1]
    shape[axis] = n
    return prof.reshape(shape)


def build_coefficients(
    grid: Grid,
    omega: float,
    tau: float,
    eps: np.ndarray | float = 1.0,
    sigma: np.ndarray | float = 0.0,
    *,
    mu: np.ndarray | float = 1.0,
    pml: Mapping[str, PMLSpec] | None = None,
    sources: Mapping[str, np.ndarray] | None = None,
) -> CoefficientSet:
    """Build the coefficient arrays for a scene.

    Parameters
    ----------
    grid:
        The simulation grid.
    omega:
        Angular frequency of the incident plane wave (normalized units).
    tau:
        Time step of the inverse iteration; see :meth:`Grid.cfl_time_step`.
    eps, sigma:
        Per-cell real permittivity and conductivity (scalars broadcast);
        typically from :meth:`repro.fdfd.geometry.Scene.rasterize`.
        Cells with ``eps < 0`` automatically take the back iteration.
    mu:
        Relative permeability (the solar-cell stack is non-magnetic).
    pml:
        Optional per-axis PML specs keyed ``"z"``/``"y"``/``"x"``.
    sources:
        Raw source amplitude arrays ``S`` keyed by source coefficient name
        (``SrcEx``, ``SrcEy``, ``SrcHx``, ``SrcHy``); the builder folds in
        the ``tau`` factor and the per-cell denominator.  Missing entries
        default to zero.
    """
    if omega <= 0:
        raise ValueError(f"omega must be positive, got {omega}")
    if tau <= 0:
        raise ValueError(f"tau must be positive, got {tau}")
    eps = np.asarray(np.broadcast_to(np.asarray(eps, dtype=np.float64), grid.shape))
    sigma = np.asarray(np.broadcast_to(np.asarray(sigma, dtype=np.float64), grid.shape))
    mu = np.asarray(np.broadcast_to(np.asarray(mu, dtype=np.float64), grid.shape))
    if np.any(eps == 0):
        raise ValueError("permittivity must be nonzero everywhere")
    if np.any(mu <= 0):
        raise ValueError("permeability must be positive")
    if np.any(sigma < 0):
        raise ValueError("conductivity must be >= 0")
    pml = dict(pml or {})
    sources = dict(sources or {})

    back = eps < 0.0

    phase_full = np.exp(-1j * omega * tau)        # e^{-i w tau}
    phase_half = np.exp(1j * omega * tau / 2.0)   # e^{+i w tau/2}

    arrays: Dict[str, np.ndarray] = {}
    axis_spec = {0: pml.get("z"), 1: pml.get("y"), 2: pml.get("x")}

    for name in ALL_COMPONENTS:
        spec = SPECS[name]
        a = spec.deriv_axis
        d_a = grid.spacing[a]
        if spec.field == "E":
            sig_a = _axis_profile(grid, a, axis_spec[a], staggered=False) + sigma
            # Forward iteration (Eq. 3).
            denom_f = 1.0 + tau * sig_a / eps
            c_f = phase_full / denom_f
            t_f = spec.sign * (tau / (eps * d_a)) * phase_half / denom_f * phase_full
            s_f = tau / denom_f * phase_full
            # Back iteration (Eq. 5) for metals.
            denom_b = 1.0 - tau * sig_a / eps
            c_b = np.exp(1j * omega * tau) / denom_b
            t_b = -spec.sign * (tau / (eps * d_a)) * phase_half / denom_b
            s_b = -tau / denom_b
            c_arr = np.where(back, c_b, c_f).astype(np.complex128)
            t_arr = np.where(back, t_b, t_f).astype(np.complex128)
            s_arr = np.where(back, s_b, s_f).astype(np.complex128)
        else:
            # Magnetic split parts: matched PML profile, staggered sampling,
            # no material magnetic loss.
            sig_star = _axis_profile(grid, a, axis_spec[a], staggered=True)
            q = np.exp(1j * omega * tau / 2.0) + tau * sig_star / mu
            c_arr = (np.exp(-1j * omega * tau / 2.0) / q).astype(np.complex128)
            t_arr = (spec.sign * (tau / (mu * d_a)) / q).astype(np.complex128)
            s_arr = (tau / q).astype(np.complex128)

        arrays[spec.coeff_t] = np.ascontiguousarray(np.broadcast_to(t_arr, grid.shape).astype(np.complex128))
        arrays[spec.coeff_c] = np.ascontiguousarray(np.broadcast_to(c_arr, grid.shape).astype(np.complex128))
        if spec.source is not None:
            raw = sources.get(spec.source)
            if raw is None:
                src = np.zeros(grid.shape, dtype=np.complex128)
            else:
                raw = np.asarray(raw, dtype=np.complex128)
                if raw.shape != grid.shape:
                    raise ValueError(
                        f"source {spec.source} has shape {raw.shape}, expected {grid.shape}"
                    )
                src = np.ascontiguousarray(raw * np.broadcast_to(s_arr, grid.shape))
            arrays[spec.source] = src

    return CoefficientSet(grid=grid, omega=omega, tau=tau, arrays=arrays,
                          back_mask=back if bool(np.any(back)) else None)


def random_coefficients(grid: Grid, seed: int = 0, contraction: float = 0.9) -> CoefficientSet:
    """Random but stable coefficient arrays (testing / benchmarking aid).

    Produces arrays with ``|c| < contraction`` and small ``|t|`` so that
    arbitrary traversal-order experiments (tiled vs. naive equivalence)
    run on generic data without constructing a physical scene.  The
    ``omega``/``tau`` metadata are nominal.
    """
    if not (0 < contraction < 1):
        raise ValueError("contraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    arrays: Dict[str, np.ndarray] = {}

    def rand(scale: float) -> np.ndarray:
        mag = rng.uniform(0.1, 1.0, grid.shape) * scale
        ph = rng.uniform(0, 2 * np.pi, grid.shape)
        return np.ascontiguousarray(mag * np.exp(1j * ph))

    for name in ALL_COMPONENTS:
        spec = SPECS[name]
        arrays[spec.coeff_t] = rand(0.1)
        arrays[spec.coeff_c] = rand(contraction)
        if spec.source is not None:
            arrays[spec.source] = rand(0.05)
    return CoefficientSet(grid=grid, omega=1.0, tau=0.1, arrays=arrays)
