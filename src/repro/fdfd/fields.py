"""Field state container for the twelve split-field components.

The THIIM kernel evolves twelve domain-sized double-complex arrays (the
split parts of the six E and six H vector components).  ``FieldState``
bundles them with convenience accessors for the recombined physical fields
(``Ex = Exy + Exz`` etc.) used by the observables module.

:class:`BatchedFieldState` stacks ``k`` scenarios (e.g. the wavelengths
of a campaign) into ``12 x k`` arrays of shape ``(k,) + grid.shape`` so
the kernels update every scenario in one pass over the shared stencil
working set.  Lanes are views (``lane``) or copies (``extract``) that
round-trip through plain :class:`FieldState`, and ``compact`` drops
converged lanes in place so a long-running batch only spends sweeps on
the points that still need them.
"""

from __future__ import annotations

from typing import Dict, Iterator, Sequence

import numpy as np

from .grid import Grid
from .specs import ALL_COMPONENTS, E_COMPONENTS, H_COMPONENTS, SPECS

__all__ = ["FieldState", "BatchedFieldState"]


class FieldState:
    """Twelve split-field component arrays on a :class:`Grid`.

    The arrays are exposed through item access (``state["Exy"]``) so the
    kernels can be written generically over the component specs.  All
    arrays are C-contiguous complex128 of shape ``grid.shape``.
    """

    __slots__ = ("grid", "_arrays")

    def __init__(self, grid: Grid, arrays: Dict[str, np.ndarray] | None = None):
        self.grid = grid
        if arrays is None:
            arrays = {name: grid.zeros() for name in ALL_COMPONENTS}
        else:
            for name in ALL_COMPONENTS:
                if name not in arrays:
                    raise KeyError(f"missing component {name}")
                a = arrays[name]
                if a.shape != grid.shape:
                    raise ValueError(
                        f"component {name} has shape {a.shape}, expected {grid.shape}"
                    )
                if a.dtype != np.complex128:
                    raise TypeError(f"component {name} must be complex128, got {a.dtype}")
        self._arrays = arrays

    # -- mapping-style access -------------------------------------------------

    def __getitem__(self, name: str) -> np.ndarray:
        return self._arrays[name]

    def __setitem__(self, name: str, value: np.ndarray) -> None:
        if name not in self._arrays:
            raise KeyError(name)
        self._arrays[name][...] = value

    def __iter__(self) -> Iterator[str]:
        return iter(ALL_COMPONENTS)

    def components(self) -> Dict[str, np.ndarray]:
        """The underlying component dict (live references, not copies)."""
        return self._arrays

    # -- lifecycle -------------------------------------------------------------

    def copy(self) -> "FieldState":
        return FieldState(self.grid, {k: v.copy() for k, v in self._arrays.items()})

    def fill_random(self, rng: np.random.Generator, scale: float = 1.0) -> "FieldState":
        """Fill every component with random complex data (testing aid)."""
        for name in ALL_COMPONENTS:
            shape = self.grid.shape
            self._arrays[name][...] = scale * (
                rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
            )
        return self

    def zero_boundary(self) -> "FieldState":
        """Impose homogeneous Dirichlet values on the outermost cell layer
        of every non-periodic axis (the paper's benchmark boundary
        condition)."""
        per = self.grid.periodic
        for a in self._arrays.values():
            if not per[0]:
                a[0, :, :] = 0
                a[-1, :, :] = 0
            if not per[1]:
                a[:, 0, :] = 0
                a[:, -1, :] = 0
            if not per[2]:
                a[:, :, 0] = 0
                a[:, :, -1] = 0
        return self

    # -- recombined physical fields ---------------------------------------------

    def combined(self, which: str) -> np.ndarray:
        """Recombine split parts: ``combined("Ex") == Exy + Exz`` etc."""
        parts = [n for n in ALL_COMPONENTS if n.startswith(which)]
        if len(parts) != 2:
            raise KeyError(f"unknown physical field {which!r}")
        return self._arrays[parts[0]] + self._arrays[parts[1]]

    def e_vector(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The physical (Ex, Ey, Ez)."""
        return self.combined("Ex"), self.combined("Ey"), self.combined("Ez")

    def h_vector(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The physical (Hx, Hy, Hz)."""
        return self.combined("Hx"), self.combined("Hy"), self.combined("Hz")

    # -- comparisons -------------------------------------------------------------

    def allclose(self, other: "FieldState", rtol: float = 1e-10, atol: float = 1e-12) -> bool:
        """Component-wise closeness (the tiled-vs-naive correctness check)."""
        return all(
            np.allclose(self._arrays[n], other._arrays[n], rtol=rtol, atol=atol)
            for n in ALL_COMPONENTS
        )

    def max_abs_difference(self, other: "FieldState") -> float:
        return max(
            float(np.max(np.abs(self._arrays[n] - other._arrays[n])))
            for n in ALL_COMPONENTS
        )

    def norm(self) -> float:
        """Root-sum-square magnitude over all components."""
        return float(
            np.sqrt(
                sum(float(np.sum(np.abs(self._arrays[n]) ** 2)) for n in ALL_COMPONENTS)
            )
        )

    def field_norm(self, field: str) -> float:
        """Norm over the E ("E") or H ("H") components only."""
        comps = E_COMPONENTS if field == "E" else H_COMPONENTS
        return float(
            np.sqrt(sum(float(np.sum(np.abs(self._arrays[n]) ** 2)) for n in comps))
        )

    #: Scenario lanes carried by this state (kernels scale their LUP
    #: counters by this; the batched subclass reports its stack width).
    @property
    def batch_width(self) -> int:
        return 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FieldState(grid={self.grid.shape}, |E|={self.field_norm('E'):.3e}, |H|={self.field_norm('H'):.3e})"


class BatchedFieldState:
    """``k`` stacked field states: twelve ``(k,) + grid.shape`` arrays.

    The kernels accept this anywhere they accept :class:`FieldState`
    (they detect the leading axis), and every lane of a batched sweep is
    bit-identical to sweeping that lane alone -- the stacked update is
    purely elementwise in the batch axis.
    """

    __slots__ = ("grid", "_arrays")

    def __init__(self, grid: Grid, width: int | None = None,
                 arrays: Dict[str, np.ndarray] | None = None):
        self.grid = grid
        if arrays is None:
            if width is None or width < 1:
                raise ValueError("batch width must be >= 1")
            shape = (width,) + grid.shape
            arrays = {
                name: np.zeros(shape, dtype=np.complex128)
                for name in ALL_COMPONENTS
            }
        else:
            widths = set()
            for name in ALL_COMPONENTS:
                if name not in arrays:
                    raise KeyError(f"missing component {name}")
                a = arrays[name]
                if a.ndim != 4 or a.shape[1:] != grid.shape:
                    raise ValueError(
                        f"component {name} has shape {a.shape}, expected "
                        f"(k,) + {grid.shape}"
                    )
                if a.dtype != np.complex128:
                    raise TypeError(f"component {name} must be complex128, got {a.dtype}")
                widths.add(a.shape[0])
            if len(widths) != 1:
                raise ValueError(f"inconsistent batch widths {sorted(widths)}")
            if width is not None and width != widths.pop():
                raise ValueError("width does not match the provided arrays")
        self._arrays = arrays

    # -- construction -----------------------------------------------------------

    @classmethod
    def stack(cls, states: Sequence[FieldState]) -> "BatchedFieldState":
        """Stack per-point states into one batch (lane ``i`` == state ``i``)."""
        if not states:
            raise ValueError("cannot stack an empty sequence of states")
        grid = states[0].grid
        for s in states:
            if s.grid.shape != grid.shape:
                raise ValueError("all states must share one grid shape")
        arrays = {
            name: np.ascontiguousarray(np.stack([s[name] for s in states]))
            for name in ALL_COMPONENTS
        }
        return cls(grid, arrays=arrays)

    # -- mapping-style access ---------------------------------------------------

    def __getitem__(self, name: str) -> np.ndarray:
        return self._arrays[name]

    def __setitem__(self, name: str, value: np.ndarray) -> None:
        if name not in self._arrays:
            raise KeyError(name)
        self._arrays[name][...] = value

    def __iter__(self) -> Iterator[str]:
        return iter(ALL_COMPONENTS)

    def components(self) -> Dict[str, np.ndarray]:
        return self._arrays

    @property
    def batch_width(self) -> int:
        return self._arrays[ALL_COMPONENTS[0]].shape[0]

    # -- lanes ------------------------------------------------------------------

    def lane(self, i: int) -> FieldState:
        """Zero-copy :class:`FieldState` view of lane ``i`` (each lane of
        a C-contiguous stack is itself C-contiguous)."""
        return FieldState(self.grid, {n: a[i] for n, a in self._arrays.items()})

    def extract(self, i: int) -> FieldState:
        """Deep copy of lane ``i`` (used to freeze a converged point)."""
        return FieldState(
            self.grid,
            {n: np.ascontiguousarray(a[i]) for n, a in self._arrays.items()},
        )

    def compact(self, keep: Sequence[int]) -> None:
        """Drop all lanes not in ``keep``, **in place** (the executor and
        the solver share this object by reference, so compaction must not
        change its identity).  Lane data survives bit-for-bit -- a fancy
        index copy is exact."""
        idx = list(keep)
        if not idx:
            raise ValueError("cannot compact to zero lanes")
        width = self.batch_width
        if any(i < 0 or i >= width for i in idx):
            raise IndexError(f"lane index out of range for width {width}")
        self._arrays = {n: a[idx] for n, a in self._arrays.items()}

    def adopt(self, arrays: Dict[str, np.ndarray]) -> None:
        """Replace the whole lane stack **in place** (checkpoint resume
        restores the active lanes into the same object the executor and
        solver already reference).  Validates like the constructor."""
        replacement = BatchedFieldState(self.grid, arrays=dict(arrays))
        self._arrays = replacement._arrays

    # -- lifecycle --------------------------------------------------------------

    def copy(self) -> "BatchedFieldState":
        return BatchedFieldState(
            self.grid, arrays={k: v.copy() for k, v in self._arrays.items()}
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchedFieldState(grid={self.grid.shape}, k={self.batch_width})"
