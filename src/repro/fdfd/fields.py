"""Field state container for the twelve split-field components.

The THIIM kernel evolves twelve domain-sized double-complex arrays (the
split parts of the six E and six H vector components).  ``FieldState``
bundles them with convenience accessors for the recombined physical fields
(``Ex = Exy + Exz`` etc.) used by the observables module.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from .grid import Grid
from .specs import ALL_COMPONENTS, E_COMPONENTS, H_COMPONENTS, SPECS

__all__ = ["FieldState"]


class FieldState:
    """Twelve split-field component arrays on a :class:`Grid`.

    The arrays are exposed through item access (``state["Exy"]``) so the
    kernels can be written generically over the component specs.  All
    arrays are C-contiguous complex128 of shape ``grid.shape``.
    """

    __slots__ = ("grid", "_arrays")

    def __init__(self, grid: Grid, arrays: Dict[str, np.ndarray] | None = None):
        self.grid = grid
        if arrays is None:
            arrays = {name: grid.zeros() for name in ALL_COMPONENTS}
        else:
            for name in ALL_COMPONENTS:
                if name not in arrays:
                    raise KeyError(f"missing component {name}")
                a = arrays[name]
                if a.shape != grid.shape:
                    raise ValueError(
                        f"component {name} has shape {a.shape}, expected {grid.shape}"
                    )
                if a.dtype != np.complex128:
                    raise TypeError(f"component {name} must be complex128, got {a.dtype}")
        self._arrays = arrays

    # -- mapping-style access -------------------------------------------------

    def __getitem__(self, name: str) -> np.ndarray:
        return self._arrays[name]

    def __setitem__(self, name: str, value: np.ndarray) -> None:
        if name not in self._arrays:
            raise KeyError(name)
        self._arrays[name][...] = value

    def __iter__(self) -> Iterator[str]:
        return iter(ALL_COMPONENTS)

    def components(self) -> Dict[str, np.ndarray]:
        """The underlying component dict (live references, not copies)."""
        return self._arrays

    # -- lifecycle -------------------------------------------------------------

    def copy(self) -> "FieldState":
        return FieldState(self.grid, {k: v.copy() for k, v in self._arrays.items()})

    def fill_random(self, rng: np.random.Generator, scale: float = 1.0) -> "FieldState":
        """Fill every component with random complex data (testing aid)."""
        for name in ALL_COMPONENTS:
            shape = self.grid.shape
            self._arrays[name][...] = scale * (
                rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
            )
        return self

    def zero_boundary(self) -> "FieldState":
        """Impose homogeneous Dirichlet values on the outermost cell layer
        of every non-periodic axis (the paper's benchmark boundary
        condition)."""
        per = self.grid.periodic
        for a in self._arrays.values():
            if not per[0]:
                a[0, :, :] = 0
                a[-1, :, :] = 0
            if not per[1]:
                a[:, 0, :] = 0
                a[:, -1, :] = 0
            if not per[2]:
                a[:, :, 0] = 0
                a[:, :, -1] = 0
        return self

    # -- recombined physical fields ---------------------------------------------

    def combined(self, which: str) -> np.ndarray:
        """Recombine split parts: ``combined("Ex") == Exy + Exz`` etc."""
        parts = [n for n in ALL_COMPONENTS if n.startswith(which)]
        if len(parts) != 2:
            raise KeyError(f"unknown physical field {which!r}")
        return self._arrays[parts[0]] + self._arrays[parts[1]]

    def e_vector(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The physical (Ex, Ey, Ez)."""
        return self.combined("Ex"), self.combined("Ey"), self.combined("Ez")

    def h_vector(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The physical (Hx, Hy, Hz)."""
        return self.combined("Hx"), self.combined("Hy"), self.combined("Hz")

    # -- comparisons -------------------------------------------------------------

    def allclose(self, other: "FieldState", rtol: float = 1e-10, atol: float = 1e-12) -> bool:
        """Component-wise closeness (the tiled-vs-naive correctness check)."""
        return all(
            np.allclose(self._arrays[n], other._arrays[n], rtol=rtol, atol=atol)
            for n in ALL_COMPONENTS
        )

    def max_abs_difference(self, other: "FieldState") -> float:
        return max(
            float(np.max(np.abs(self._arrays[n] - other._arrays[n])))
            for n in ALL_COMPONENTS
        )

    def norm(self) -> float:
        """Root-sum-square magnitude over all components."""
        return float(
            np.sqrt(
                sum(float(np.sum(np.abs(self._arrays[n]) ** 2)) for n in ALL_COMPONENTS)
            )
        )

    def field_norm(self, field: str) -> float:
        """Norm over the E ("E") or H ("H") components only."""
        comps = E_COMPONENTS if field == "E" else H_COMPONENTS
        return float(
            np.sqrt(sum(float(np.sum(np.abs(self._arrays[n]) ** 2)) for n in comps))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FieldState(grid={self.grid.shape}, |E|={self.field_norm('E'):.3e}, |H|={self.field_norm('H'):.3e})"
