"""Observables: energy, Poynting flux, absorption, residuals.

These are the quantities a solar-cell designer extracts from a converged
THIIM run (Section I of the paper: the point of the simulation is the
optical absorption in each layer of the stack) plus the diagnostics the
test suite uses to validate the physics (energy decay, PML transmission,
convergence of the inverse iteration).
"""

from __future__ import annotations

import numpy as np

from .fields import FieldState

__all__ = [
    "field_energy",
    "electric_energy_density",
    "poynting_z",
    "poynting_flux_z",
    "absorption_density",
    "absorbed_power",
    "relative_change",
]


def field_energy(fields: FieldState, eps: np.ndarray | float = 1.0, mu: np.ndarray | float = 1.0) -> float:
    """Total electromagnetic energy ``1/2 sum(eps |E|^2 + mu |H|^2)``.

    Uses the recombined physical fields.  With complex THIIM amplitudes
    this is the cycle-averaged energy up to a factor of two; the tests
    only rely on monotonicity/boundedness so the convention is immaterial.
    """
    ex, ey, ez = fields.e_vector()
    hx, hy, hz = fields.h_vector()
    e2 = np.abs(ex) ** 2 + np.abs(ey) ** 2 + np.abs(ez) ** 2
    h2 = np.abs(hx) ** 2 + np.abs(hy) ** 2 + np.abs(hz) ** 2
    return float(0.5 * np.sum(np.abs(eps) * e2 + mu * h2))


def electric_energy_density(fields: FieldState, eps: np.ndarray | float = 1.0) -> np.ndarray:
    """Per-cell ``1/2 eps |E|^2`` (the absorber diagnostic of interest)."""
    ex, ey, ez = fields.e_vector()
    return 0.5 * np.abs(eps) * (np.abs(ex) ** 2 + np.abs(ey) ** 2 + np.abs(ez) ** 2)


def poynting_z(fields: FieldState) -> np.ndarray:
    """Cycle-averaged z-component of the Poynting vector per cell.

    ``S_z = 1/2 Re(Ex Hy* - Ey Hx*)`` -- positive values carry power toward
    +z.  Evaluated collocated (no stagger interpolation); adequate for the
    plane-flux diagnostics in the tests and examples.
    """
    ex, ey, _ = fields.e_vector()
    hx, hy, _ = fields.h_vector()
    return 0.5 * np.real(ex * np.conj(hy) - ey * np.conj(hx))


def poynting_flux_z(fields: FieldState, z_index: int) -> float:
    """Net power crossing the plane ``z = z_index`` toward +z."""
    grid = fields.grid
    if not (0 <= z_index < grid.nz):
        raise IndexError(f"z_index {z_index} outside grid")
    return float(np.sum(poynting_z(fields)[z_index, :, :]) * grid.dy * grid.dx)


def absorption_density(fields: FieldState, sigma: np.ndarray | float) -> np.ndarray:
    """Cycle-averaged absorbed power density ``1/2 sigma |E|^2`` per cell."""
    ex, ey, ez = fields.e_vector()
    return 0.5 * np.asarray(sigma) * (np.abs(ex) ** 2 + np.abs(ey) ** 2 + np.abs(ez) ** 2)


def absorbed_power(fields: FieldState, sigma: np.ndarray | float, mask: np.ndarray | None = None) -> float:
    """Total absorbed power, optionally restricted to a material mask.

    This is the per-layer absorption figure a photovoltaic optimization
    loop maximizes (e.g. absorption in the a-Si:H layer vs. parasitic
    absorption in the silver back contact).
    """
    dens = absorption_density(fields, sigma)
    if mask is not None:
        dens = dens * mask
    grid = fields.grid
    return float(np.sum(dens) * grid.dz * grid.dy * grid.dx)


def relative_change(current: FieldState, previous: FieldState) -> float:
    """``|E_now - E_prev| / |E_now|`` over the electric components.

    The THIIM convergence monitor: the inverse iteration has converged to
    the time-harmonic solution when successive iterates stop changing.
    """
    num = 0.0
    den = 0.0
    for name in current:
        if not name.startswith("E"):
            continue
        d = current[name] - previous[name]
        num += float(np.sum(np.abs(d) ** 2))
        den += float(np.sum(np.abs(current[name]) ** 2))
    if den == 0.0:
        return 0.0 if num == 0.0 else np.inf
    return float(np.sqrt(num / den))
