"""The twelve THIIM component-update kernels.

Each kernel is the vectorized NumPy equivalent of the paper's Listings 1
and 2: a streaming update ``F = t * (A' + B' - A - B) + c * F (+ src)``
over a rectangular index region.  The same entry points serve

* the **naive sweep** (full-domain half steps, the paper's baseline),
* the **spatially blocked sweep** (identical arithmetic, blocked loop
  order), and
* the **tiled executor** of :mod:`repro.core.executor`, which drives the
  kernels row-range by row-range following a wavefront-diamond schedule.

Keeping a single implementation for all traversals is what makes the
"tiled == naive" correctness contract meaningful.

Region semantics
----------------
A region is a triple of ``slice`` objects ``(z, y, x)``.  Kernels assume
the *far* read (index ``i + shift`` along the derivative axis) is either in
bounds or wraps on a periodic axis; :func:`clip_region` produces the
largest valid sub-region of a requested range for a given component, and
both the naive and the tiled path obtain their regions through it.

Batch axis
----------
Every kernel also accepts *batched* state -- component arrays with one
leading scenario axis, shape ``(k,) + grid.shape`` (see
:class:`~repro.fdfd.fields.BatchedFieldState`).  Regions stay spatial
triples; the kernels detect the extra axis from ``arr.ndim`` and prefix a
full slice.  Because the update is purely elementwise in the stacked
axis (no reductions), each lane of a batched update is **bit-identical**
to running that lane alone -- the contract the batched campaign engine
is built on: one pass over the shared stencil working set updates all
``k`` wavelengths.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

import numpy as np

from .coefficients import CoefficientSet
from .fields import FieldState
from .grid import Grid
from .specs import ALL_COMPONENTS, E_COMPONENTS, H_COMPONENTS, SPECS, ComponentSpec

__all__ = [
    "Region",
    "clip_region",
    "full_region",
    "region_lups",
    "update_component",
    "update_h",
    "update_e",
    "step",
    "naive_sweep",
    "spatial_blocked_sweep",
]

Region = tuple[slice, slice, slice]


def full_region(grid: Grid) -> Region:
    return (slice(0, grid.nz), slice(0, grid.ny), slice(0, grid.nx))


def clip_region(
    grid: Grid,
    spec: ComponentSpec,
    z: tuple[int, int] | None = None,
    y: tuple[int, int] | None = None,
    x: tuple[int, int] | None = None,
) -> Region | None:
    """Largest valid update region of a component inside a requested box.

    Ranges default to the full axis.  Along the component's derivative
    axis the range is intersected with :meth:`Grid.interior_range` (on a
    non-periodic axis the far read must stay in bounds; the clipped
    boundary cells hold the homogeneous Dirichlet values).  Returns
    ``None`` if the clipped region is empty.
    """
    want = [z or (0, grid.nz), y or (0, grid.ny), x or (0, grid.nx)]
    out: list[slice] = []
    for axis in range(3):
        lo, hi = want[axis]
        lo, hi = max(lo, 0), min(hi, grid.axis_len(axis))
        if axis == spec.deriv_axis:
            ilo, ihi = grid.interior_range(axis, spec.shift)
            lo, hi = max(lo, ilo), min(hi, ihi)
        if lo >= hi:
            return None
        out.append(slice(lo, hi))
    return (out[0], out[1], out[2])


def region_lups(region: Region) -> int:
    """Grid cells covered by a region (one component update each)."""
    n = 1
    for sl in region:
        n *= sl.stop - sl.start
    return n


#: Reusable kernel work buffers, keyed by (shape, dtype, slot).  The update
#: of one region needs at most four same-shaped buffers alive at once (two
#: accumulators + two wrapped shifted reads); reusing them removes every
#: per-call allocation from the hot path.  The pool is thread-local: one
#: executor thread is single-threaded through a solve, but a serve node
#: with ``workers > 1`` (or several in-process node schedulers) runs
#: concurrent solves, and same-shaped solves sharing one buffer would
#: race and corrupt each other's numerics.
_SCRATCH = threading.local()
_SCRATCH_MAX = 64


def _scratch(shape: tuple, dtype, slot: int) -> np.ndarray:
    pool = getattr(_SCRATCH, "pool", None)
    if pool is None:
        pool = _SCRATCH.pool = {}
    key = (shape, dtype, slot)
    buf = pool.get(key)
    if buf is None:
        if len(pool) >= _SCRATCH_MAX:
            pool.clear()
        buf = np.empty(shape, dtype)
        pool[key] = buf
    return buf


def _shifted_read(
    arr: np.ndarray,
    region: Region,
    axis: int,
    shift: int,
    periodic: bool,
    scratch_slot: int = 0,
) -> np.ndarray:
    """Read ``arr`` over ``region`` displaced by ``shift`` along ``axis``.

    In bounds this is a zero-copy view.  On a periodic axis the unit-shift
    far read crosses the boundary by at most one cell, so the wrapped read
    is the concatenation of two contiguous slices -- assembled into a
    reused scratch buffer (valid until the next ``scratch_slot`` reuse)
    instead of gathering through a modulo fancy index.

    ``arr`` may carry a leading batch axis (ndim 4): ``region``/``axis``
    stay spatial and the batch axis is read whole.
    """
    lead = arr.ndim - 3
    pre = (slice(None),) * lead
    lo = region[axis].start + shift
    hi = region[axis].stop + shift
    n = arr.shape[lead + axis]
    sl = list(region)
    if 0 <= lo and hi <= n:
        sl[axis] = slice(lo, hi)
        return arr[pre + tuple(sl)]
    if not periodic:
        raise IndexError(
            f"shifted read [{lo}, {hi}) out of bounds on non-periodic axis {axis}"
        )
    if lo < 0 and hi > n:  # |shift| > 1 never happens for these stencils
        sl[axis] = np.arange(lo, hi) % n
        return arr[pre + tuple(sl)]
    sl2 = list(region)
    if lo < 0:
        sl[axis] = slice(n + lo, n)
        sl2[axis] = slice(0, hi)
    else:
        sl[axis] = slice(lo, n)
        sl2[axis] = slice(0, hi - n)
    shape = arr.shape[:lead] + tuple(
        (hi - lo) if ax == axis else (s.stop - s.start) for ax, s in enumerate(region)
    )
    out = _scratch(shape, arr.dtype, 100 + scratch_slot)
    np.concatenate((arr[pre + tuple(sl)], arr[pre + tuple(sl2)]),
                   axis=lead + axis, out=out)
    return out


def update_component(
    name: str,
    fields: FieldState,
    coeffs: CoefficientSet,
    region: Region,
) -> None:
    """Apply one component update over ``region`` (in place).

    ``region`` must already be valid for this component (see
    :func:`clip_region`); this is the hot path and performs no clipping of
    its own.  All intermediates go through reused scratch buffers, in
    exactly the operation order of the plain expression
    ``t * (A' + B' - A - B) + c * F (+ src)`` -- results are bit-identical
    to the allocating form.

    Batched state (arrays with a leading scenario axis) updates every
    lane in the same pass; the arithmetic per lane is the same elementwise
    sequence, so each lane stays bit-identical to an unbatched update.
    """
    spec = SPECS[name]
    grid = fields.grid
    axis = spec.deriv_axis
    periodic = grid.periodic[axis]

    a = fields[spec.reads[0]]
    b = fields[spec.reads[1]]
    lead = a.ndim - 3
    reg = (slice(None),) * lead + region
    shape = a.shape[:lead] + tuple(sl.stop - sl.start for sl in region)
    s1 = _scratch(shape, a.dtype, 0)
    s2 = _scratch(shape, a.dtype, 1)
    near = np.add(a[reg], b[reg], out=s1)
    far = np.add(
        _shifted_read(a, region, axis, spec.shift, periodic, scratch_slot=0),
        _shifted_read(b, region, axis, spec.shift, periodic, scratch_slot=1),
        out=s2,
    )
    # H updates difference (far - near) = F[i+1] - F[i]; E updates
    # (near - far) = F[i] - F[i-1].  The 1/d factor lives in ``t``.
    if spec.shift > 0:
        diff = np.subtract(far, near, out=s2)
    else:
        diff = np.subtract(near, far, out=s2)

    f = fields[name]
    out = np.multiply(coeffs.t(name)[reg], diff, out=s1)
    out += np.multiply(coeffs.c(name)[reg], f[reg], out=s2)
    src = coeffs.src(name)
    if src is not None:
        out += src[reg]
    f[reg] = out


def _update_group(
    components: Sequence[str],
    fields: FieldState,
    coeffs: CoefficientSet,
    z: tuple[int, int] | None,
    y: tuple[int, int] | None,
    x: tuple[int, int] | None,
) -> int:
    """Update a group of components over a clipped box; returns cell-updates
    performed (for the performance counters).  Batched state counts every
    lane (``k`` LUPs per cell for a width-``k`` batch)."""
    grid = fields.grid
    width = getattr(fields, "batch_width", 1)
    done = 0
    for name in components:
        region = clip_region(grid, SPECS[name], z=z, y=y, x=x)
        if region is not None:
            update_component(name, fields, coeffs, region)
            done += region_lups(region) * width
    return done


def update_h(
    fields: FieldState,
    coeffs: CoefficientSet,
    z: tuple[int, int] | None = None,
    y: tuple[int, int] | None = None,
    x: tuple[int, int] | None = None,
    components: Sequence[str] = H_COMPONENTS,
) -> int:
    """Magnetic half step ``H^{n-1/2} -> H^{n+1/2}`` over a box."""
    return _update_group(components, fields, coeffs, z, y, x)


def update_e(
    fields: FieldState,
    coeffs: CoefficientSet,
    z: tuple[int, int] | None = None,
    y: tuple[int, int] | None = None,
    x: tuple[int, int] | None = None,
    components: Sequence[str] = E_COMPONENTS,
) -> int:
    """Electric half step ``E^n -> E^{n+1}`` over a box."""
    return _update_group(components, fields, coeffs, z, y, x)


def step(fields: FieldState, coeffs: CoefficientSet) -> int:
    """One full THIIM time step (H half step then E half step)."""
    return update_h(fields, coeffs) + update_e(fields, coeffs)


def naive_sweep(fields: FieldState, coeffs: CoefficientSet, nsteps: int) -> int:
    """The reference traversal: ``nsteps`` full-domain time steps.

    This is the ground truth every blocked/tiled traversal must reproduce.
    """
    if nsteps < 0:
        raise ValueError("nsteps must be >= 0")
    total = 0
    for _ in range(nsteps):
        total += step(fields, coeffs)
    return total


def spatial_blocked_sweep(
    fields: FieldState,
    coeffs: CoefficientSet,
    nsteps: int,
    block_y: int,
    block_z: int | None = None,
) -> int:
    """Spatially blocked traversal (the paper's optimized baseline).

    Splits each half step into (z, y) blocks so two successive x-y layers
    of the z-shifted arrays fit in cache ("layer conditions", Section
    III-B).  Within one half step the component updates are independent,
    so any block order yields results identical to the naive sweep -- which
    the tests assert.
    """
    if block_y < 1 or (block_z is not None and block_z < 1):
        raise ValueError("block sizes must be >= 1")
    grid = fields.grid
    bz = block_z or grid.nz
    total = 0
    for _ in range(nsteps):
        for comps in (H_COMPONENTS, E_COMPONENTS):
            for z0 in range(0, grid.nz, bz):
                for y0 in range(0, grid.ny, block_y):
                    total += _update_group(
                        comps,
                        fields,
                        coeffs,
                        z=(z0, min(z0 + bz, grid.nz)),
                        y=(y0, min(y0 + block_y, grid.ny)),
                        x=None,
                    )
    return total
