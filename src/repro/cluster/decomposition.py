"""Cartesian domain decomposition and its communication cost model.

The production THIIM code is hybrid MPI+OpenMP; the paper treats the
intra-socket (OpenMP) part and leaves communication analysis as future
work, but its Section VI discusses the distributed-memory geometry at
length: decomposing the leading (x) dimension is the most expensive
because that halo is not contiguous in memory, and *thin* domains are
attractive because mapping the thin dimension to x avoids decomposing it
while keeping a favourable surface-to-volume ratio.

This module provides the decomposition geometry (who owns which slab,
which faces have neighbours) and a transfer-cost model that prices each
face by volume and contiguity; :mod:`repro.cluster.distributed` runs a
real (simulated-rank) halo-exchanged solve on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterator, List, Tuple

from ..fdfd.grid import Grid
from ..fdfd.specs import BYTES_PER_NUMBER

__all__ = [
    "RankLayout",
    "Subdomain",
    "CommCostModel",
    "candidate_layouts",
    "choose_decomposition",
    "step_bytes_by_axis",
]

Coord = Tuple[int, int, int]


@dataclass(frozen=True)
class Subdomain:
    """The slab owned by one rank: global index ranges per axis."""

    coord: Coord
    z: Tuple[int, int]
    y: Tuple[int, int]
    x: Tuple[int, int]

    @property
    def shape(self) -> Tuple[int, int, int]:
        return (self.z[1] - self.z[0], self.y[1] - self.y[0], self.x[1] - self.x[0])

    @property
    def n_cells(self) -> int:
        nz, ny, nx = self.shape
        return nz * ny * nx

    def face_cells(self, axis: int) -> int:
        """Cells on one face perpendicular to ``axis``."""
        nz, ny, nx = self.shape
        return (ny * nx, nz * nx, nz * ny)[axis]


def _split(n: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``n`` cells into ``parts`` contiguous nearly-equal ranges."""
    base, rem = divmod(n, parts)
    out = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < rem else 0)
        out.append((start, start + size))
        start += size
    return out


@dataclass(frozen=True)
class RankLayout:
    """A (pz, py, px) Cartesian process grid over a global grid."""

    grid: Grid
    pz: int
    py: int
    px: int

    def __post_init__(self) -> None:
        for p, n, label in ((self.pz, self.grid.nz, "z"), (self.py, self.grid.ny, "y"),
                            (self.px, self.grid.nx, "x")):
            if p < 1:
                raise ValueError(f"p{label} must be >= 1")
            if n // p < 2:
                raise ValueError(
                    f"{label} axis of {n} cells cannot feed {p} ranks "
                    f"(each needs >= 2 cells)"
                )

    @property
    def n_ranks(self) -> int:
        return self.pz * self.py * self.px

    @property
    def dims(self) -> Coord:
        return (self.pz, self.py, self.px)

    def coords(self) -> Iterator[Coord]:
        return product(range(self.pz), range(self.py), range(self.px))

    def subdomain(self, coord: Coord) -> Subdomain:
        cz, cy, cx = coord
        return Subdomain(
            coord=coord,
            z=_split(self.grid.nz, self.pz)[cz],
            y=_split(self.grid.ny, self.py)[cy],
            x=_split(self.grid.nx, self.px)[cx],
        )

    def subdomains(self) -> Dict[Coord, Subdomain]:
        return {c: self.subdomain(c) for c in self.coords()}

    def neighbor(self, coord: Coord, axis: int, direction: int) -> Coord | None:
        """Neighbouring rank coordinate along an axis (periodic-aware)."""
        c = list(coord)
        c[axis] += direction
        dims = self.dims
        if 0 <= c[axis] < dims[axis]:
            return (c[0], c[1], c[2])
        if self.grid.periodic[axis]:
            # Wrap-around; with one rank on the axis this is the rank
            # itself (its ghost is filled from its own opposite face).
            c[axis] %= dims[axis]
            return (c[0], c[1], c[2])
        return None


@dataclass(frozen=True)
class CommCostModel:
    """Per-face halo transfer cost.

    Parameters
    ----------
    latency_us:
        Per-message latency (microseconds).
    bandwidth_gbs:
        Network bandwidth per rank pair.
    strided_penalty:
        Multiplier on the byte cost of non-contiguous halos.  A z-face
        halo (one full (y, x) plane) is contiguous in the ``(z, y, x)``
        layout; a y-face halo is a strided set of x-rows (mildly
        penalized by pack/unpack); an x-face halo is fully strided, one
        element per row -- the expensive case Section VI calls out.
    arrays:
        Field arrays exchanged per half step (the six components of the
        class being read).
    """

    latency_us: float = 2.0
    bandwidth_gbs: float = 10.0
    strided_penalty: float = 3.0
    arrays: int = 6

    #: Pack/unpack friction per axis: z contiguous, y strided by rows,
    #: x gather/scatter element-wise.
    def axis_factor(self, axis: int) -> float:
        return (1.0, 1.0 + (self.strided_penalty - 1.0) / 2.0, self.strided_penalty)[axis]

    def face_cost_us(self, cells: int, axis: int) -> float:
        bytes_ = cells * self.arrays * BYTES_PER_NUMBER * self.axis_factor(axis)
        return self.latency_us + bytes_ / (self.bandwidth_gbs * 1e3)  # us

    def step_cost_us(self, layout: RankLayout) -> float:
        """Worst-rank halo time for one full time step (both half steps)."""
        worst = 0.0
        for coord, sub in layout.subdomains().items():
            total = 0.0
            for axis in range(3):
                for direction in (-1, +1):
                    if layout.neighbor(coord, axis, direction) is not None:
                        total += self.face_cost_us(sub.face_cells(axis), axis)
            worst = max(worst, total)
        return worst  # one exchange per half step x 2 halves = x2 below

    def surface_to_volume(self, layout: RankLayout) -> float:
        """Max over ranks of exchanged halo cells per owned cell."""
        worst = 0.0
        for coord, sub in layout.subdomains().items():
            surface = 0
            for axis in range(3):
                for direction in (-1, +1):
                    if layout.neighbor(coord, axis, direction) is not None:
                        surface += sub.face_cells(axis)
            worst = max(worst, surface / sub.n_cells)
        return worst


def step_bytes_by_axis(layout: RankLayout, arrays: int = 6) -> Dict[int, int]:
    """Halo bytes moved per full time step, summed over all ranks and
    both half steps, keyed by axis.

    Each half step fills one ghost plane per (rank, axis, direction)
    pair that has a neighbour, moving ``face_cells * arrays`` complex
    numbers into the receiver -- the same accounting
    :class:`repro.cluster.distributed.CommStats` keeps, so measured and
    modeled traffic can be compared exactly.
    """
    out = {0: 0, 1: 0, 2: 0}
    for coord, sub in layout.subdomains().items():
        for axis in range(3):
            # +1 direction feeds the E-read (H half step), -1 the
            # H-read (E half step): one exchange each per time step.
            for direction in (-1, +1):
                if layout.neighbor(coord, axis, direction) is not None:
                    out[axis] += sub.face_cells(axis) * arrays * BYTES_PER_NUMBER
    return out


def candidate_layouts(
    grid: Grid,
    n_ranks: int,
    cost: CommCostModel | None = None,
) -> List[Tuple[float, RankLayout]]:
    """All feasible (pz, py, px) factorizations of ``n_ranks`` over
    ``grid``, cheapest halo step first.

    Returns ``(step_cost_us, layout)`` pairs; ties break toward "avoid
    x, then y" (strided halos), reproducing the paper's Section VI
    guidance mechanically.  Raises when no factorization fits (some axis
    would get fewer than 2 cells per rank).
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    cost = cost or CommCostModel()
    ranked: List[Tuple[Tuple[float, int, int], RankLayout]] = []
    for pz in range(1, n_ranks + 1):
        if n_ranks % pz:
            continue
        rest = n_ranks // pz
        for py in range(1, rest + 1):
            if rest % py:
                continue
            px = rest // py
            try:
                layout = RankLayout(grid, pz, py, px)
            except ValueError:
                continue
            key = (round(cost.step_cost_us(layout), 9), px, py)
            ranked.append((key, layout))
    if not ranked:
        raise ValueError(f"no feasible decomposition of {grid.shape} over {n_ranks} ranks")
    ranked.sort(key=lambda pair: pair[0])
    return [(key[0], layout) for key, layout in ranked]


def choose_decomposition(
    grid: Grid,
    n_ranks: int,
    cost: CommCostModel | None = None,
) -> RankLayout:
    """Pick the (pz, py, px) factorization with the cheapest halo step.

    Reproduces the paper's guidance mechanically: the x axis is only
    split as a last resort (strided halos), and thin dimensions end up
    undivided.
    """
    return candidate_layouts(grid, n_ranks, cost)[0][1]
