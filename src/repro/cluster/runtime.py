"""Real multiprocess distributed THIIM: ranks, halos, checkpoints.

The promotion of :mod:`repro.cluster.distributed` from simulated ranks
to actual OS processes.  One parent (the scheduler's worker, or a thread
worker's call frame) forks ``layout.n_ranks`` rank processes; each rank
owns the same ghosted slab a simulated ``_Rank`` would, exchanges halos
through a :mod:`repro.cluster.transport` (shared memory, or queues as
fallback), and advances the exact Fig. 3 half-step sequence with the
shared :func:`~repro.cluster.distributed.component_region` clipping.

Bit-identity with the single-domain sweep is preserved by construction:

* Ranks are forked from a parent that already built the full global
  :class:`~repro.fdfd.thiim.THIIMSolver`, so every slab is cut from the
  *same* coefficient arrays a scalar solve uses.
* Ranks never compute residuals.  At every convergence boundary the
  parent gathers the owned slabs over the control pipes, assembles the
  global :class:`~repro.fdfd.fields.FieldState` and evaluates
  :func:`~repro.fdfd.observables.relative_change` /
  :func:`~repro.fdfd.thiim.divergence_reason` on it -- the same
  full-domain reduction order as :meth:`THIIMSolver.solve`, which is
  what makes the residual history (and hence the stop step) identical.

Resilience: each rank snapshots its slab through the ordinary
:class:`~repro.resilience.checkpoint.CheckpointManager` (name and token
namespaced by layout and coordinate), and the parent commits a *marker*
file once every rank has acknowledged a boundary -- a group checkpoint
is only resumable when all of its members exist at the same step.  A
rank death surfaces as :class:`~repro.resilience.errors.RankCrash`
(retryable); the scheduler's retry re-enters this module, reads the
marker, and resumes every rank from the committed boundary.
"""

from __future__ import annotations

import hashlib
import os
import time
from types import SimpleNamespace
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import config, telemetry
from ..core import tracing
from ..fdfd.fields import FieldState
from ..fdfd.kernels import update_component
from ..fdfd.observables import relative_change
from ..fdfd.specs import (
    ALL_COMPONENTS,
    BYTES_PER_NUMBER,
    E_COMPONENTS,
    H_COMPONENTS,
)
from ..fdfd.thiim import SolveResult, divergence_reason
from ..ioutil import atomic_write_json, read_json
from ..resilience import faults
from ..resilience.checkpoint import CheckpointManager, note_report, solver_token
from ..resilience.errors import RankCrash, SolverDiverged, error_from_kind
from .decomposition import Coord, RankLayout
from .distributed import CommStats, _Rank, component_region
from .transport import SYNC_TIMEOUT_S, face_shape, make_transport

__all__ = ["run_distributed", "clear_checkpoints", "MARKER_VERSION"]

MARKER_VERSION = 1


def _marker_path(directory: str, name: str) -> str:
    return os.path.join(directory, f"ckpt-{name}.cluster.json")


def _rank_token(base: str, coord: Coord) -> str:
    return hashlib.sha256(f"{base}:{coord}".encode()).hexdigest()[:32]


def _rank_name(name: str, coord: Coord) -> str:
    return f"{name}.r{coord[0]}-{coord[1]}-{coord[2]}"


def clear_checkpoints(layout: RankLayout, directory: Optional[str],
                      name: str) -> None:
    """Drop every rank snapshot and the group marker (result stored)."""
    if not directory:
        return
    for coord in layout.coords():
        try:
            os.unlink(os.path.join(
                directory, f"ckpt-{_rank_name(name, coord)}.npz"))
        except OSError:
            pass
    try:
        os.unlink(_marker_path(directory, name))
    except OSError:
        pass


class _SlabSnapshot:
    """Duck-typed ``fields`` adapter over one rank's owned slab, so a
    slab snapshot rides the ordinary :class:`CheckpointManager` (atomic
    write, token guard, quarantine) without a full :class:`Grid`."""

    __slots__ = ("grid", "_owned")

    def __init__(self, grid_meta, owned: Dict[str, np.ndarray]):
        self.grid = grid_meta
        self._owned = owned

    def __iter__(self):
        return iter(ALL_COMPONENTS)

    def __getitem__(self, name: str) -> np.ndarray:
        return self._owned[name]

    def __setitem__(self, name: str, value: np.ndarray) -> None:
        self._owned[name][...] = value


# -- rank side -----------------------------------------------------------------


def _rank_edges(layout: RankLayout, coord: Coord):
    """This rank's transported send/recv edges and local self-edges."""
    send, recv, selfs = [], [], []
    for axis in range(3):
        for direction in (-1, +1):
            nb = layout.neighbor(coord, axis, direction)
            if nb == coord:
                selfs.append((axis, direction))
                continue
            if nb is not None:
                recv.append(((coord, axis, direction), axis, direction))
            sender_for = layout.neighbor(coord, axis, -direction)
            if sender_for is not None and sender_for != coord:
                send.append(((sender_for, axis, direction), axis, direction))
    return send, recv, selfs


def _pin_rank(index: int) -> Optional[int]:
    """Pin this rank to one CPU when ``REPRO_CLUSTER_PIN`` is set.

    Round-robin over the CPUs the process may already use (respects any
    outer cgroup/affinity mask).  Returns the pinned CPU id, or ``None``
    when pinning is off or unsupported -- pinning is an optimization
    hint, never a correctness requirement, so every failure is soft.
    """
    if not config.cluster_pin():
        return None
    try:
        cpus = sorted(os.sched_getaffinity(0))
        if not cpus:
            return None
        cpu = cpus[index % len(cpus)]
        os.sched_setaffinity(0, {cpu})
        return cpu
    except (AttributeError, OSError):
        return None


def _rank_main(index: int, coord: Coord, layout: RankLayout, solver,
               transport, conn, attempt: int, trace_on: bool,
               ckpt_cfg: Optional[dict]) -> None:
    """Entry point of one rank process (fork: everything is inherited)."""
    faults.set_in_child(True)
    faults.set_attempt(attempt)
    telemetry.disable()
    pinned_cpu = _pin_rank(index)
    rec = tracing.start_trace(None) if trace_on else None
    try:
        sub = layout.subdomain(coord)
        my_shape = sub.shape
        rank = _Rank(sub, solver.fields, solver.coefficients)
        stats = CommStats()
        send_edges, recv_edges, self_edges = _rank_edges(layout, coord)
        inner = [slice(1, 1 + n) for n in my_shape]
        regions = {
            name: component_region(layout.grid, sub, name)
            for name in ALL_COMPONENTS
        }

        def exchange(names: Tuple[str, ...], direction: int) -> None:
            for key, axis, d in send_edges:
                if d != direction:
                    continue
                src_idx = list(inner)
                src_idx[axis] = 1 if direction > 0 else my_shape[axis]
                block = np.empty(
                    (len(names),) + face_shape(my_shape, axis), np.complex128)
                for i, name in enumerate(names):
                    block[i] = rank.fields[name][tuple(src_idx)]
                transport.send(key, block)
            for axis, d in self_edges:
                # Periodic axis with a single rank: the ghost is our own
                # opposite face; copy locally, no transport.
                if d != direction:
                    continue
                dst_idx = list(inner)
                dst_idx[axis] = 1 + my_shape[axis] if direction > 0 else 0
                src_idx = list(inner)
                src_idx[axis] = 1 if direction > 0 else my_shape[axis]
                for name in names:
                    rank.fields[name][tuple(dst_idx)] = \
                        rank.fields[name][tuple(src_idx)]
            transport.sync()
            for key, axis, d in recv_edges:
                if d != direction:
                    continue
                block = transport.recv(key)
                dst_idx = list(inner)
                dst_idx[axis] = 1 + my_shape[axis] if direction > 0 else 0
                for i, name in enumerate(names):
                    rank.fields[name][tuple(dst_idx)] = block[i]
                for _ in names:
                    stats.record(axis, sub.face_cells(axis) * BYTES_PER_NUMBER)
            for axis, d in self_edges:
                if d != direction:
                    continue
                # Same receiver-side accounting as the simulated ranks
                # (and the cost model): a wrap still moves a face.
                for _ in names:
                    stats.record(axis, sub.face_cells(axis) * BYTES_PER_NUMBER)

        def run_block(n: int) -> None:
            for _ in range(n):
                # H half step reads E at +1 -> high-face E ghosts.
                exchange(E_COMPONENTS, +1)
                for name in H_COMPONENTS:
                    if regions[name] is not None:
                        update_component(name, rank.fields, rank.coeffs,
                                         regions[name])
                # E half step reads H at -1 -> low-face H ghosts.
                exchange(H_COMPONENTS, -1)
                for name in E_COMPONENTS:
                    if regions[name] is not None:
                        update_component(name, rank.fields, rank.coeffs,
                                         regions[name])

        ckpt: Optional[CheckpointManager] = None
        snap: Optional[_SlabSnapshot] = None
        if ckpt_cfg is not None:
            ckpt = CheckpointManager(
                ckpt_cfg["directory"], name=_rank_name(ckpt_cfg["name"], coord),
                token=_rank_token(ckpt_cfg["token"], coord),
                every=max(int(ckpt_cfg.get("every", 1)), 1))
            grid_meta = SimpleNamespace(
                shape=tuple(my_shape), spacing=tuple(layout.grid.spacing),
                periodic=tuple(layout.grid.periodic))
            snap = _SlabSnapshot(
                grid_meta, {n: rank.owned(n) for n in ALL_COMPONENTS})

        loaded = ckpt.load() if ckpt is not None else None
        conn.send({"type": "hello", "pid": os.getpid(), "cpu": pinned_cpu,
                   "resumed": None if loaded is None else int(loaded.steps)})
        msg = conn.recv()
        if msg.get("type") != "begin":
            raise RuntimeError(f"expected begin, got {msg!r}")
        if msg["restore"] and loaded is not None:
            for name in ALL_COMPONENTS:
                rank.owned(name)[...] = loaded.arrays[name]
            ckpt.resumed_from = loaded.steps
        conn.send({"type": "state",
                   "fields": {n: np.ascontiguousarray(rank.owned(n))
                              for n in ALL_COMPONENTS}})

        while True:
            msg = conn.recv()
            t = msg.get("type")
            if t == "step":
                faults.hit("cluster.rank")
                faults.hit(f"cluster.rank.{index}")
                label = f"rank {coord[0]},{coord[1]},{coord[2]}"
                with tracing.span(f"{label} sweep", "cluster",
                                  args={"n": msg["n"]}):
                    run_block(msg["n"])
                conn.send({"type": "check",
                           "fields": {n: np.ascontiguousarray(rank.owned(n))
                                      for n in ALL_COMPONENTS},
                           "stats": stats.to_dict()})
            elif t == "save":
                path = None
                if ckpt is not None and snap is not None:
                    path = ckpt.save(snap, msg["steps"], msg["history"])
                conn.send({"type": "saved", "ok": path is not None})
            elif t == "stop":
                conn.send({"type": "bye", "stats": stats.to_dict(),
                           "trace": rec.export() if rec is not None else None})
                break
            else:
                raise RuntimeError(f"unknown command {t!r}")
        conn.close()
        os._exit(0)
    except EOFError:
        os._exit(1)
    except BaseException as exc:  # surface typed errors to the parent
        try:
            conn.send({"type": "error", "kind": type(exc).__name__,
                       "message": str(exc)})
        except OSError:
            pass
        os._exit(1)


# -- parent side ---------------------------------------------------------------


def _recv(coord: Coord, conns: Dict[Coord, object],
          procs: Dict[Coord, object], timeout_s: float,
          watch_siblings: bool = True):
    """Receive one message from a rank, watching *every* rank's health
    (a dead sibling stalls the barrier, so waiting on one pipe must not
    mask another rank's crash).  ``watch_siblings=False`` during the
    graceful stop, where clean sibling exits are expected."""
    conn = conns[coord]
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            if conn.poll(0.05):
                return conn.recv()
            if procs[coord].exitcode is not None:
                if conn.poll(0.2):
                    return conn.recv()
                raise RankCrash(
                    f"rank {coord} exited with code "
                    f"{procs[coord].exitcode} mid-solve",
                    coord=list(coord), exitcode=procs[coord].exitcode)
        except (EOFError, OSError):
            raise RankCrash(
                f"rank {coord} closed its pipe mid-solve", coord=list(coord))
        if watch_siblings:
            for c, proc in procs.items():
                if c == coord or proc.exitcode in (None, 0):
                    continue
                # Prefer the sibling's own typed error, if it sent one
                # before dying; otherwise report the death itself.
                try:
                    if conns[c].poll(0.1):
                        _check_payload(conns[c].recv(), c)
                except (EOFError, OSError):
                    pass
                raise RankCrash(
                    f"rank {c} exited with code {proc.exitcode} mid-solve",
                    coord=list(c), exitcode=proc.exitcode)
        if time.monotonic() > deadline:
            raise RankCrash(
                f"rank {coord} unresponsive for {timeout_s:.0f}s",
                coord=list(coord))


def _check_payload(msg: dict, coord: Coord) -> dict:
    if msg.get("type") == "error":
        raise error_from_kind(msg.get("kind"),
                              f"rank {coord}: {msg.get('message')}")
    return msg


def _assemble(layout: RankLayout,
              slabs: Dict[Coord, Dict[str, np.ndarray]]) -> FieldState:
    out = FieldState(layout.grid)
    for coord, arrays in slabs.items():
        sub = layout.subdomain(coord)
        own = (slice(sub.z[0], sub.z[1]), slice(sub.y[0], sub.y[1]),
               slice(sub.x[0], sub.x[1]))
        for name in ALL_COMPONENTS:
            out[name][own] = arrays[name]
    return out


def _slab_residual(arrays: Dict[str, np.ndarray], previous: FieldState,
                   own) -> float:
    num = den = 0.0
    for name in arrays:
        if not name.startswith("E"):
            continue
        d = arrays[name] - previous[name][own]
        num += float(np.sum(np.abs(d) ** 2))
        den += float(np.sum(np.abs(arrays[name]) ** 2))
    if den == 0.0:
        return 0.0 if num == 0.0 else float(np.inf)
    return float(np.sqrt(num / den))


def run_distributed(
    layout: RankLayout,
    solver,
    tol: float,
    max_steps: int,
    check_every: int = 20,
    name: str = "cluster",
    checkpoint_dir: Optional[str] = None,
    every: int = 0,
    attempt: int = 1,
    timeout_s: float = SYNC_TIMEOUT_S,
    on_divergence: str = "raise",
) -> Tuple[SolveResult, Dict]:
    """Solve ``solver``'s problem across real rank processes.

    Returns ``(result, info)`` where ``result`` is a plain
    :class:`SolveResult` (global fields, bit-identical to the scalar
    sweep) and ``info`` carries the cluster provenance: pids, transport,
    merged halo stats, resume point and group-checkpoint saves.
    """
    import multiprocessing as mp

    if tuple(solver.grid.shape) != tuple(layout.grid.shape):
        raise ValueError("solver grid does not match the layout's grid")
    if tuple(solver.grid.periodic) != tuple(layout.grid.periodic):
        raise ValueError("solver periodicity does not match the layout's grid")
    if tol <= 0:
        raise ValueError("tol must be positive")
    if check_every < 1:
        raise ValueError("check_every must be >= 1")
    if on_divergence not in ("return", "raise"):
        raise ValueError("on_divergence must be 'return' or 'raise'")

    grid = layout.grid
    coords = list(layout.coords())

    # Group-checkpoint configuration: one token namespace per layout, so
    # a 2x2x1 run can never resume a 1x1x2 run's slabs (or a scalar
    # solve's snapshot).
    ckpt_cfg = None
    marker = None
    resumed_steps: Optional[int] = None
    resumed_history: List[float] = []
    if checkpoint_dir and every >= 1:
        base = solver_token(solver, tol=tol, max_steps=max_steps,
                            check_every=check_every,
                            ranks="x".join(str(d) for d in layout.dims))
        ckpt_cfg = {"directory": checkpoint_dir, "name": name,
                    "token": base, "every": every}
        marker = _marker_path(checkpoint_dir, name)
        doc = read_json(marker)
        if (isinstance(doc, dict) and doc.get("version") == MARKER_VERSION
                and doc.get("token") == base
                and isinstance(doc.get("steps"), int)):
            resumed_steps = int(doc["steps"])
            resumed_history = [float(v) for v in doc.get("history") or []]

    transport = make_transport(layout, timeout_s=timeout_s)
    ctx = mp.get_context("fork")
    trace_on = tracing.active() is not None
    procs: Dict[Coord, object] = {}
    conns: Dict[Coord, object] = {}
    stats = CommStats()
    saves = 0
    last_saved: Optional[int] = None

    def report(resumed_from: Optional[int]) -> None:
        if ckpt_cfg is not None and marker is not None:
            note_report(marker, saves, resumed_from)

    def stop_ranks() -> None:
        """Graceful stop: collect stats + trace lanes from every rank."""
        rec = tracing.active()
        for coord in coords:
            conns[coord].send({"type": "stop"})
        for coord in coords:
            bye = _check_payload(
                _recv(coord, conns, procs, timeout_s,
                      watch_siblings=False), coord)
            stats.merge(CommStats.from_dict(bye["stats"]))
            if rec is not None and bye.get("trace"):
                z, y, x = coord
                rec.merge_child(bye["trace"], label=f"rank {z},{y},{x}")
        for coord in coords:
            procs[coord].join(timeout=timeout_s)

    try:
        for index, coord in enumerate(coords):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_rank_main,
                args=(index, coord, layout, solver, transport, child_conn,
                      attempt, trace_on, ckpt_cfg),
                daemon=True,
                name=f"repro-rank-{coord[0]}-{coord[1]}-{coord[2]}",
            )
            proc.start()
            child_conn.close()
            procs[coord] = proc
            conns[coord] = parent_conn

        hellos = {
            coord: _check_payload(
                _recv(coord, conns, procs, timeout_s), coord)
            for coord in coords
        }
        pids = [int(hellos[c]["pid"]) for c in coords]
        cpu_pins = [hellos[c].get("cpu") for c in coords]

        # Resume only when the marker and *every* rank snapshot agree on
        # the boundary; anything else restarts from sweep 0 (safe and
        # still bit-identical -- determinism makes restarts free).
        restore = resumed_steps is not None and all(
            hellos[c]["resumed"] == resumed_steps for c in coords)
        steps = resumed_steps if restore else 0
        history = list(resumed_history) if restore else []
        resumed_from = steps if restore and steps else None
        report(resumed_from)
        for coord in coords:
            conns[coord].send({"type": "begin", "restore": restore})
        slabs = {
            coord: _check_payload(
                _recv(coord, conns, procs, timeout_s), coord)["fields"]
            for coord in coords
        }
        previous = _assemble(layout, slabs)
        current = previous
        if restore and resumed_from:
            from ..resilience.errors import RESILIENCE_COUNTERS

            RESILIENCE_COUNTERS.bump("checkpoints_resumed")
            if telemetry.enabled():
                telemetry.checkpoint_resumes().inc()

        if telemetry.enabled():
            telemetry.cluster_ranks().set(layout.n_ranks)
            telemetry.publish(
                "cluster", phase="start", ranks=layout.n_ranks,
                layout=list(layout.dims), transport=transport.name,
                pids=pids, sweeps=steps,
                resumed_from=resumed_from)
        rec = tracing.active()
        if rec is not None:
            rec.instant("cluster.start", "cluster", args=telemetry.span_args(
                {"ranks": layout.n_ranks, "layout": list(layout.dims),
                 "transport": transport.name}))

        prev_bytes_axis = {0: 0, 1: 0, 2: 0}
        prev_messages = 0

        def publish_boundary(res: float, current_slabs) -> None:
            merged = CommStats()
            for coord in coords:
                merged.merge(CommStats.from_dict(current_slabs[coord]["stats"]))
            nonlocal prev_messages
            if telemetry.enabled():
                for axis in (0, 1, 2):
                    delta = merged.bytes_by_axis[axis] - prev_bytes_axis[axis]
                    if delta > 0:
                        telemetry.cluster_halo_bytes().labels(
                            axis="zyx"[axis]).inc(delta)
                    prev_bytes_axis[axis] = merged.bytes_by_axis[axis]
                if merged.messages > prev_messages:
                    telemetry.cluster_halo_messages().inc(
                        merged.messages - prev_messages)
                rank_res = {}
                for coord in coords:
                    sub = layout.subdomain(coord)
                    own = (slice(sub.z[0], sub.z[1]),
                           slice(sub.y[0], sub.y[1]),
                           slice(sub.x[0], sub.x[1]))
                    z, y, x = coord
                    rank_res[f"{z},{y},{x}"] = _slab_residual(
                        current_slabs[coord]["fields"], previous, own) / n
                telemetry.publish(
                    "cluster", sweeps=steps, residual=float(res),
                    ranks=layout.n_ranks, rank_residuals=rank_res,
                    halo_bytes=merged.bytes_total,
                    halo_messages=merged.messages)
            prev_messages = merged.messages

        while steps < max_steps:
            n = min(check_every, max_steps - steps)
            faults.hit("solver.sweep")
            for coord in coords:
                conns[coord].send({"type": "step", "n": n})
            checks = {
                coord: _check_payload(
                    _recv(coord, conns, procs, timeout_s), coord)
                for coord in coords
            }
            steps += n
            current = _assemble(
                layout, {c: checks[c]["fields"] for c in coords})
            res = relative_change(current, previous) / n
            history.append(res)
            publish_boundary(res, checks)
            reason = divergence_reason(res, history)
            if reason is not None:
                stop_ranks()
                if on_divergence == "raise":
                    raise SolverDiverged(
                        f"THIIM iteration diverged after {steps} steps: "
                        f"{reason}",
                        steps=steps, residual=float(res),
                        history_tail=[float(r) for r in history[-6:]])
                return _finish(current, steps, res, False, history,
                               layout, stats, pids, cpu_pins, transport,
                               resumed_from, saves)
            if res < tol:
                stop_ranks()
                return _finish(current, steps, res, True, history,
                               layout, stats, pids, cpu_pins, transport,
                               resumed_from, saves)
            previous = current
            anchor = last_saved if last_saved is not None else (
                resumed_from or 0)
            if ckpt_cfg is not None and steps - anchor >= every:
                for coord in coords:
                    conns[coord].send(
                        {"type": "save", "steps": steps,
                         "history": [float(r) for r in history]})
                acks = {
                    coord: _check_payload(
                        _recv(coord, conns, procs, timeout_s), coord)
                    for coord in coords
                }
                if all(acks[c].get("ok") for c in coords):
                    atomic_write_json(
                        marker,
                        {"version": MARKER_VERSION, "token": ckpt_cfg["token"],
                         "steps": steps,
                         "history": [float(r) for r in history],
                         "layout": list(layout.dims)},
                        checksum=True)
                    saves += 1
                    last_saved = steps
                    report(resumed_from)

        stop_ranks()
        final_res = history[-1] if history else float(np.inf)
        return _finish(current, steps, final_res, False, history, layout,
                       stats, pids, cpu_pins, transport, resumed_from, saves)
    except RankCrash:
        if telemetry.enabled():
            telemetry.cluster_rank_failures().inc()
            telemetry.publish("cluster", phase="rank-crash",
                              ranks=layout.n_ranks)
        raise
    finally:
        for proc in procs.values():
            if proc.exitcode is None:
                proc.terminate()
        for proc in procs.values():
            proc.join(timeout=5.0)
        for conn in conns.values():
            try:
                conn.close()
            except OSError:
                pass
        transport.shutdown()


def _finish(fields: FieldState, steps: int, res: float, converged: bool,
            history: List[float], layout: RankLayout, stats: CommStats,
            pids: List[int], cpu_pins: List[Optional[int]], transport,
            resumed_from: Optional[int],
            saves: int) -> Tuple[SolveResult, Dict]:
    result = SolveResult(fields, steps, float(res), converged, list(history))
    info = {
        "layout": list(layout.dims),
        "ranks": layout.n_ranks,
        "pids": pids,
        "transport": transport.name,
        "halo": stats.to_dict(),
        "resumed_from": resumed_from,
        "saves": saves,
    }
    if any(cpu is not None for cpu in cpu_pins):
        # REPRO_CLUSTER_PIN was on and at least one rank pinned: surface
        # the per-rank CPU ids (rank order) for benches and tests.
        info["cpu_pins"] = cpu_pins
    return result, info
