"""Halo transports for the multiprocess cluster runtime.

A transport moves one *edge block* -- the six read-class components of a
ghost plane, packed ``(6,) + face_shape`` complex128 -- from the sending
rank to the receiving rank.  Edges are keyed ``(receiver_coord, axis,
direction)``; the sender for an edge is ``layout.neighbor(receiver,
axis, direction)``, i.e. the rank whose owned boundary plane fills that
ghost.  Self-edges (a periodic axis with one rank, where a rank's ghost
comes from its own far face) never reach a transport: the runtime copies
them locally.

Two implementations:

* :class:`ShmTransport` -- one ``multiprocessing.shared_memory`` segment
  per edge, created (and its numpy view built) in the **parent** before
  forking, so every rank inherits a mapping of the same physical pages.
  A single reusable barrier separates the pack phase from the read
  phase of each exchange; the alternating +1/-1 exchanges of the THIIM
  step then guarantee a buffer is never repacked before its reader has
  moved past it (the reader must clear the *other* exchange's barrier
  first).
* :class:`QueueTransport` -- one ``multiprocessing.Queue`` per directed
  edge, for hosts where POSIX shared memory is unavailable.  ``send``
  enqueues a freshly packed block (never mutated afterwards, so the
  feeder thread's lazy pickling is safe) and ``sync`` is a no-op.

``make_transport`` picks by ``REPRO_CLUSTER_TRANSPORT`` (``shm``,
``pipe`` or ``auto`` -- shm with queue fallback).
"""

from __future__ import annotations

import multiprocessing as mp
from multiprocessing import shared_memory
from typing import Dict, List, Tuple

import numpy as np

from .. import config
from .decomposition import Coord, RankLayout

__all__ = [
    "EdgeKey",
    "HaloTransport",
    "QueueTransport",
    "ShmTransport",
    "edge_keys",
    "face_shape",
    "make_transport",
]

#: (receiver coordinate, axis, direction): the ghost plane being filled.
EdgeKey = Tuple[Coord, int, int]

#: Safety net against orphaned ranks spinning forever on a dead peer.
SYNC_TIMEOUT_S = 120.0


def face_shape(sub_shape: Tuple[int, int, int], axis: int) -> Tuple[int, int]:
    """Shape of one ghost/boundary plane perpendicular to ``axis``."""
    nz, ny, nx = sub_shape
    return ((ny, nx), (nz, nx), (nz, ny))[axis]


def edge_keys(layout: RankLayout) -> List[Tuple[EdgeKey, Coord]]:
    """Every transported edge of a layout as ``(key, sender_coord)``.

    Skips faces with no neighbour (non-periodic boundary) and
    self-edges (sender == receiver), which the runtime copies locally.
    """
    out = []
    for coord in layout.coords():
        for axis in range(3):
            for direction in (-1, +1):
                sender = layout.neighbor(coord, axis, direction)
                if sender is None or sender == coord:
                    continue
                out.append((((coord), axis, direction), sender))
    return out


class HaloTransport:
    """Interface: pack blocks, synchronize, read blocks."""

    name = "none"

    def send(self, key: EdgeKey, block: np.ndarray) -> None:
        raise NotImplementedError

    def sync(self) -> None:
        """Barrier between the pack and read phases of one exchange
        (collective; every rank must call it the same number of times)."""
        raise NotImplementedError

    def recv(self, key: EdgeKey) -> np.ndarray:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Parent-side cleanup after all ranks have exited."""


class ShmTransport(HaloTransport):
    """Shared-memory segments + one reusable barrier.

    Must be constructed in the parent *before* the rank processes fork:
    the numpy views are built over the parent's mappings and inherited,
    so ranks never attach by name (no resource-tracker involvement in
    children; the parent owns unlink).
    """

    name = "shm"

    def __init__(self, layout: RankLayout, arrays: int = 6,
                 timeout_s: float = SYNC_TIMEOUT_S):
        self.timeout_s = timeout_s
        self._barrier = mp.get_context("fork").Barrier(layout.n_ranks)
        self._segments: List[shared_memory.SharedMemory] = []
        self._views: Dict[EdgeKey, np.ndarray] = {}
        subs = layout.subdomains()
        try:
            for key, _sender in edge_keys(layout):
                coord, axis, _direction = key
                shape = (arrays,) + face_shape(subs[coord].shape, axis)
                nbytes = int(np.prod(shape)) * np.dtype(np.complex128).itemsize
                seg = shared_memory.SharedMemory(create=True, size=nbytes)
                self._segments.append(seg)
                view = np.ndarray(shape, dtype=np.complex128, buffer=seg.buf)
                view.fill(0)
                self._views[key] = view
        except Exception:
            self.shutdown()
            raise

    def send(self, key: EdgeKey, block: np.ndarray) -> None:
        self._views[key][...] = block

    def sync(self) -> None:
        self._barrier.wait(timeout=self.timeout_s)

    def recv(self, key: EdgeKey) -> np.ndarray:
        return self._views[key]

    def shutdown(self) -> None:
        # Views hold exported buffers; drop them before close/unlink.
        self._views.clear()
        segments, self._segments = self._segments, []
        for seg in segments:
            try:
                seg.close()
                seg.unlink()
            except OSError:
                pass


class QueueTransport(HaloTransport):
    """One queue per directed edge; pack-then-read needs no barrier."""

    name = "pipe"

    def __init__(self, layout: RankLayout, arrays: int = 6,
                 timeout_s: float = SYNC_TIMEOUT_S):
        del arrays
        self.timeout_s = timeout_s
        ctx = mp.get_context("fork")
        self._queues: Dict[EdgeKey, mp.queues.Queue] = {
            key: ctx.Queue(maxsize=4) for key, _sender in edge_keys(layout)
        }

    def send(self, key: EdgeKey, block: np.ndarray) -> None:
        # A fresh copy per send: the queue's feeder thread pickles
        # lazily, and the caller's arrays mutate every sweep.
        self._queues[key].put(np.ascontiguousarray(block))

    def sync(self) -> None:
        pass

    def recv(self, key: EdgeKey) -> np.ndarray:
        return self._queues[key].get(timeout=self.timeout_s)

    def shutdown(self) -> None:
        queues, self._queues = self._queues, {}
        for q in queues.values():
            q.close()
            q.join_thread()


def make_transport(layout: RankLayout, arrays: int = 6,
                   timeout_s: float = SYNC_TIMEOUT_S) -> HaloTransport:
    """Build the transport ``REPRO_CLUSTER_TRANSPORT`` asks for.

    ``auto`` tries shared memory and falls back to queues when the host
    refuses POSIX shm (containers with a locked-down ``/dev/shm``).
    """
    mode = config.cluster_transport()
    if mode == "pipe":
        return QueueTransport(layout, arrays, timeout_s)
    if mode == "shm":
        return ShmTransport(layout, arrays, timeout_s)
    try:
        return ShmTransport(layout, arrays, timeout_s)
    except OSError:
        return QueueTransport(layout, arrays, timeout_s)
