"""Distributed-memory layer (simulated ranks).

The paper's production code is hybrid MPI+OpenMP; its Section VI
discusses decomposition geometry (non-contiguous x halos, thin domains).
This package provides the Cartesian decomposition with a communication
cost model and a functional halo-exchanged solver over simulated ranks
that reproduces the single-domain sweep bit for bit.
"""

from .decomposition import CommCostModel, RankLayout, Subdomain, choose_decomposition
from .distributed import CommStats, DistributedTHIIM

__all__ = [
    "CommCostModel",
    "CommStats",
    "DistributedTHIIM",
    "RankLayout",
    "Subdomain",
    "choose_decomposition",
]
