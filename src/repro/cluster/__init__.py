"""Distributed-memory layer: decomposition, simulated ranks, real ranks.

The paper's production code is hybrid MPI+OpenMP; its Section VI
discusses decomposition geometry (non-contiguous x halos, thin domains).
This package provides the Cartesian decomposition with a communication
cost model, a functional halo-exchanged solver over simulated ranks that
reproduces the single-domain sweep bit for bit, and (in
:mod:`~repro.cluster.runtime` / :mod:`~repro.cluster.transport`) the
promotion of that layer to real ``multiprocessing`` rank processes the
serving stack runs ``kind="distributed"`` jobs on.
"""

from .decomposition import (
    CommCostModel,
    RankLayout,
    Subdomain,
    candidate_layouts,
    choose_decomposition,
    step_bytes_by_axis,
)
from .distributed import CommStats, DistributedTHIIM
from .runtime import clear_checkpoints, run_distributed
from .transport import QueueTransport, ShmTransport, make_transport

__all__ = [
    "CommCostModel",
    "CommStats",
    "DistributedTHIIM",
    "QueueTransport",
    "RankLayout",
    "ShmTransport",
    "Subdomain",
    "candidate_layouts",
    "choose_decomposition",
    "clear_checkpoints",
    "make_transport",
    "run_distributed",
    "step_bytes_by_axis",
]
