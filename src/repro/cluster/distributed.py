"""Functional distributed-memory THIIM: simulated ranks + halo exchange.

Runs the solver decomposed over a Cartesian process grid *inside one
process*: every rank owns a ghosted slab of the twelve field arrays and
the coefficient arrays, ghosts are exchanged before each half step
(exactly the planes the dependency structure requires -- E ghosts on the
*high* faces before an H step, H ghosts on the *low* faces before an E
step, Fig. 3 of the paper), and the result is bit-identical to the
single-domain sweep.

This is the MPI layer of the production code with the transport replaced
by array copies; the byte/message counters it keeps are the inputs to
the :class:`repro.cluster.decomposition.CommCostModel` analysis of
Section VI (thin domains, non-contiguous x halos).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..fdfd.coefficients import CoefficientSet
from ..fdfd.fields import FieldState
from ..fdfd.grid import Grid
from ..fdfd.kernels import update_component
from ..fdfd.specs import (
    ALL_COMPONENTS,
    BYTES_PER_NUMBER,
    E_COMPONENTS,
    H_COMPONENTS,
    SPECS,
)
from .decomposition import Coord, RankLayout, Subdomain

__all__ = ["CommStats", "DistributedTHIIM", "component_region"]


@dataclass
class CommStats:
    """Halo-exchange traffic counters."""

    messages: int = 0
    bytes_total: int = 0
    bytes_by_axis: Dict[int, int] = field(default_factory=lambda: {0: 0, 1: 0, 2: 0})

    def record(self, axis: int, nbytes: int) -> None:
        if axis not in (0, 1, 2):
            raise ValueError(f"axis must be 0, 1 or 2, got {axis!r}")
        self.messages += 1
        self.bytes_total += nbytes
        self.bytes_by_axis[axis] += nbytes

    def merge(self, other: "CommStats") -> "CommStats":
        """Fold another rank's counters into this one (parent-side
        aggregation of per-rank stats); returns self for chaining."""
        self.messages += other.messages
        self.bytes_total += other.bytes_total
        for axis, nbytes in other.bytes_by_axis.items():
            if axis not in (0, 1, 2):
                raise ValueError(f"axis must be 0, 1 or 2, got {axis!r}")
            self.bytes_by_axis[axis] += nbytes
        return self

    def to_dict(self) -> Dict:
        return {
            "messages": self.messages,
            "bytes_total": self.bytes_total,
            "bytes_by_axis": {str(k): v for k, v in self.bytes_by_axis.items()},
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "CommStats":
        stats = cls(
            messages=int(d.get("messages", 0)),
            bytes_total=int(d.get("bytes_total", 0)),
        )
        for k, v in (d.get("bytes_by_axis") or {}).items():
            axis = int(k)
            if axis not in (0, 1, 2):
                raise ValueError(f"axis must be 0, 1 or 2, got {axis!r}")
            stats.bytes_by_axis[axis] += int(v)
        return stats


def component_region(global_grid: Grid, sub: Subdomain, name: str):
    """Local update region of ``name`` on a ghosted slab: the owned
    cells, shrunk along the derivative axis where the far read would
    cross a non-periodic *global* boundary (matching the naive sweep's
    clipping).  Returns ``None`` when the region is empty."""
    spec = SPECS[name]
    local_n = sub.shape
    lo = [1, 1, 1]
    hi = [1 + local_n[0], 1 + local_n[1], 1 + local_n[2]]
    axis = spec.deriv_axis
    bounds = (sub.z, sub.y, sub.x)[axis]
    if not global_grid.periodic[axis]:
        if spec.shift > 0 and bounds[1] == global_grid.axis_len(axis):
            hi[axis] -= 1
        if spec.shift < 0 and bounds[0] == 0:
            lo[axis] += 1
    if lo[axis] >= hi[axis]:
        return None
    return (slice(lo[0], hi[0]), slice(lo[1], hi[1]), slice(lo[2], hi[2]))


class _Rank:
    """One simulated rank: ghosted local fields + coefficients."""

    def __init__(self, sub: Subdomain, global_fields: FieldState, global_coeffs: CoefficientSet):
        nz, ny, nx = sub.shape
        self.sub = sub
        # Ghost ring of one cell on every face (unused faces stay zero,
        # which doubles as the homogeneous Dirichlet value).
        self.grid = Grid(nz + 2, ny + 2, nx + 2)
        own = (slice(sub.z[0], sub.z[1]), slice(sub.y[0], sub.y[1]), slice(sub.x[0], sub.x[1]))
        inner = (slice(1, 1 + nz), slice(1, 1 + ny), slice(1, 1 + nx))

        arrays = {}
        for name in ALL_COMPONENTS:
            a = self.grid.zeros()
            a[inner] = global_fields[name][own]
            arrays[name] = a
        self.fields = FieldState(self.grid, arrays)

        coeff_arrays = {}
        for cname, carr in global_coeffs.arrays.items():
            a = self.grid.zeros()
            a[inner] = carr[own]
            coeff_arrays[cname] = a
        self.coeffs = CoefficientSet(
            grid=self.grid, omega=global_coeffs.omega, tau=global_coeffs.tau,
            arrays=coeff_arrays,
        )

    def owned(self, name: str) -> np.ndarray:
        nz, ny, nx = self.sub.shape
        return self.fields[name][1 : 1 + nz, 1 : 1 + ny, 1 : 1 + nx]


class DistributedTHIIM:
    """Halo-exchanged THIIM over simulated ranks.

    Parameters
    ----------
    layout:
        The Cartesian decomposition.
    fields, coeffs:
        Global initial state and coefficients (as for the naive sweep).
    """

    def __init__(self, layout: RankLayout, fields: FieldState, coeffs: CoefficientSet):
        if fields.grid.shape != layout.grid.shape:
            raise ValueError("fields do not match the layout's grid")
        if coeffs.grid.shape != layout.grid.shape:
            raise ValueError("coefficients do not match the layout's grid")
        self.layout = layout
        self.global_grid = layout.grid
        self.ranks: Dict[Coord, _Rank] = {
            c: _Rank(layout.subdomain(c), fields, coeffs) for c in layout.coords()
        }
        self.stats = CommStats()
        self.steps_done = 0

    # -- halo exchange ---------------------------------------------------------

    def _exchange(self, names: Tuple[str, ...], direction: int) -> None:
        """Fill ghosts of ``names`` from the neighbour in ``direction``
        (+1: high-face ghosts from the next rank's first owned plane;
        -1: low-face ghosts from the previous rank's last owned plane)."""
        for coord, rank in self.ranks.items():
            nz, ny, nx = rank.sub.shape
            local_n = (nz, ny, nx)
            for axis in range(3):
                nb_coord = self.layout.neighbor(coord, axis, direction)
                if nb_coord is None:
                    continue
                nb = self.ranks[nb_coord]
                # Ghost plane index in the receiving rank.
                ghost = 1 + local_n[axis] if direction > 0 else 0
                # Source plane: the neighbour's owned plane adjacent to us.
                src = 1 if direction > 0 else nb.sub.shape[axis]
                for name in names:
                    dst_idx = [slice(1, 1 + n) for n in local_n]
                    dst_idx[axis] = ghost
                    src_idx = [slice(1, 1 + n) for n in nb.sub.shape]
                    src_idx[axis] = src
                    rank.fields[name][tuple(dst_idx)] = nb.fields[name][tuple(src_idx)]
                    self.stats.record(
                        axis,
                        rank.sub.face_cells(axis) * BYTES_PER_NUMBER,
                    )

    # -- update ---------------------------------------------------------------

    def _component_region(self, rank: _Rank, name: str):
        return component_region(self.global_grid, rank.sub, name)

    def _half_step(self, components: Tuple[str, ...], read_class: Tuple[str, ...], direction: int) -> None:
        self._exchange(read_class, direction)
        for rank in self.ranks.values():
            for name in components:
                region = self._component_region(rank, name)
                if region is not None:
                    update_component(name, rank.fields, rank.coeffs, region)

    def step(self, n: int = 1) -> None:
        """Advance ``n`` full THIIM time steps across all ranks."""
        if n < 0:
            raise ValueError("n must be >= 0")
        for _ in range(n):
            # H half step reads E at +1 -> high-face E ghosts.
            self._half_step(H_COMPONENTS, E_COMPONENTS, +1)
            # E half step reads H at -1 -> low-face H ghosts.
            self._half_step(E_COMPONENTS, H_COMPONENTS, -1)
            self.steps_done += 1

    # -- results ---------------------------------------------------------------

    def gather(self) -> FieldState:
        """Assemble the global field state from the ranks."""
        out = FieldState(self.global_grid)
        for rank in self.ranks.values():
            sub = rank.sub
            own = (slice(sub.z[0], sub.z[1]), slice(sub.y[0], sub.y[1]), slice(sub.x[0], sub.x[1]))
            for name in ALL_COMPONENTS:
                out[name][own] = rank.owned(name)
        return out

    def halo_bytes_per_step(self) -> float:
        if self.steps_done == 0:
            return 0.0
        return self.stats.bytes_total / self.steps_done
