#!/usr/bin/env python3
"""Auto-tune the MWD blocking parameters for a machine.

Reproduces the paper's tuning workflow on the simulated Haswell and on a
hypothetical bandwidth-starved successor, showing how the tuned diamond
width, wavefront width and thread-group split respond to the machine
balance -- and how MWD's advantage over spatial blocking *grows* as
machines get more bandwidth-starved (Section VI).

Run:  python examples/autotune_machine.py       (one to two minutes)
"""

from repro.core import cache_block_size, tune_spatial, tune_tiled
from repro.machine import HASWELL_EP, MachineSpec, validate_calibration


def tune_and_report(spec: MachineSpec, grid: int = 384) -> None:
    print(f"\n=== {spec.name} ===")
    print(f"    {spec.cores} cores @ {spec.clock_ghz} GHz, "
          f"{spec.l3_bytes / 2**20:.0f} MiB L3, {spec.bandwidth_gbs:.0f} GB/s "
          f"(machine balance {1000 * spec.machine_balance():.2f} mB/F)")

    spatial = tune_spatial(spec, grid, spec.cores)
    print(f"  spatial : {spatial.describe()}")

    owd = tune_tiled(spec, grid, spec.cores, tg_size=1, variant="1WD")
    print(f"  1WD     : {owd.describe()}")

    mwd = tune_tiled(spec, grid, spec.cores)
    print(f"  MWD     : {mwd.describe()}")

    cs = cache_block_size(mwd.dw, mwd.bz, grid)
    groups = spec.cores // mwd.tg_size
    print(f"            {groups} group(s) x C_s({mwd.dw},{mwd.bz}) = "
          f"{groups * cs / 2**20:.1f} MiB of {spec.usable_l3_bytes / 2**20:.1f} MiB usable L3")
    print(f"  speedup MWD/spatial: {mwd.mlups / spatial.mlups:.2f}x, "
          f"bandwidth saved: {100 * (1 - mwd.result.bandwidth_gbs / spec.bandwidth_gbs):.0f}%")


def main() -> None:
    rep = validate_calibration(HASWELL_EP)
    print("calibration sanity (from MachineSpec constants):")
    print(f"  spatial single core : {rep.spatial_single_core_mlups:.1f} MLUP/s")
    print(f"  spatial saturation  : {rep.spatial_saturation_cores:.1f} cores "
          f"-> {rep.spatial_saturated_mlups:.1f} MLUP/s (paper: ~6 cores, 41)")
    print(f"  projected MWD chip  : {rep.full_chip_decoupled_mlups:.0f} MLUP/s "
          f"({rep.speedup_over_spatial:.1f}x; paper: 3-4x)")

    tune_and_report(HASWELL_EP)

    # A future, more bandwidth-starved part: same cores, half the
    # bandwidth per flop.  "On a CPU with smaller machine balance we
    # expect an even more pronounced advantage" (Section IV-D).
    starved = HASWELL_EP.with_bandwidth(25.0)
    tune_and_report(starved)

    # And a fatter memory system for contrast.
    generous = HASWELL_EP.with_bandwidth(100.0)
    tune_and_report(generous)


if __name__ == "__main__":
    main()
