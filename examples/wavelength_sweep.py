#!/usr/bin/env python3
"""Absorption spectrum of a single-junction cell: a miniature version of
the production campaign the paper motivates ("about 80-160 simulations
are needed to cover the whole visible wavelength spectrum for only a
single solar cell configuration").

Sweeps the illumination wavelength, re-solving THIIM at each point, and
prints the absorber's spectral absorption plus an estimate of how long
the campaign would take on the simulated Haswell with spatial blocking
vs. MWD -- the turnaround argument of the paper's conclusion.

Run:  python examples/wavelength_sweep.py       (about a minute)
"""

import numpy as np

from repro.core import tune_spatial, tune_tiled
from repro.fdfd import (
    A_SI_H,
    SILVER,
    TCO_ZNO,
    Grid,
    PMLSpec,
    PlaneWaveSource,
    Scene,
    THIIMSolver,
    absorbed_power,
    poynting_flux_z,
)
from repro.machine import HASWELL_EP


def absorption_at(grid: Grid, scene: Scene, wavelength: float) -> tuple[float, int]:
    omega = 2 * np.pi / wavelength
    solver = THIIMSolver(
        grid,
        omega,
        scene=scene,
        source=PlaneWaveSource(z_plane=12, amplitude=1.0, z_width=2.0),
        pml={"z": PMLSpec(thickness=8)},
    )
    result = solver.solve(tol=5e-5, max_steps=2500, check_every=100)
    mask = solver.material_mask("a-Si:H")
    absorbed = absorbed_power(solver.fields, solver.sigma, mask=mask)
    incident = poynting_flux_z(solver.fields, 16)
    frac = absorbed / incident if incident > 0 else 0.0
    return frac, result.iterations


def main() -> None:
    grid = Grid(nz=64, ny=8, nx=8, periodic=(False, True, True))
    scene = (
        Scene()
        .add_layer(TCO_ZNO, 24, 28)
        .add_layer(A_SI_H, 28, 44)
        .add_layer(SILVER, 50, 64)
    )

    wavelengths = np.linspace(10.0, 24.0, 8)
    print(f"{'lambda':>7s} {'A(a-Si)':>9s} {'steps':>6s}")
    total_steps = 0
    spectrum = []
    for lam in wavelengths:
        frac, steps = absorption_at(grid, scene, float(lam))
        total_steps += steps
        spectrum.append(frac)
        bar = "#" * int(40 * min(max(frac, 0), 1))
        print(f"{lam:7.1f} {100 * frac:8.1f}% {steps:6d}  {bar}")

    assert all(np.isfinite(spectrum))
    print(f"\ncampaign: {len(wavelengths)} wavelengths, {total_steps} THIIM steps total")

    # Turnaround on the simulated Haswell, production grid 384^3:
    lups_per_run = 384**3 * 1000  # a production run is ~1000 steps
    spatial = tune_spatial(HASWELL_EP, 384, HASWELL_EP.cores)
    mwd = tune_tiled(HASWELL_EP, 384, HASWELL_EP.cores)
    n_runs = 160  # the paper's upper count for one configuration
    t_spatial = n_runs * lups_per_run / (spatial.mlups * 1e6)
    t_mwd = n_runs * lups_per_run / (mwd.mlups * 1e6)
    print(f"projected campaign time at 384^3 x {n_runs} runs on the "
          f"simulated 18-core Haswell:")
    print(f"  spatial blocking: {t_spatial / 3600:6.2f} h  ({spatial.mlups:.0f} MLUP/s)")
    print(f"  MWD             : {t_mwd / 3600:6.2f} h  ({mwd.mlups:.0f} MLUP/s)  "
          f"-> {t_spatial / t_mwd:.1f}x faster turnaround")


if __name__ == "__main__":
    main()
