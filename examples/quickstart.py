#!/usr/bin/env python3
"""Quickstart: solve a small THIIM problem and run it through the
wavefront-diamond tiled executor.

Demonstrates the two halves of the library in ~a minute of runtime:

1. the **physics substrate** -- build a grid, illuminate an absorbing
   layer through a PML, iterate to the time-harmonic state, and read off
   the absorbed power;
2. the **MWD tiling core** -- execute the same time steps through the
   wavefront-diamond plan and verify the fields are bitwise identical to
   the naive sweep (the correctness contract temporal blocking must
   honour).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import TiledExecutor, TilingPlan
from repro.fdfd import (
    A_SI_H,
    Grid,
    PMLSpec,
    PlaneWaveSource,
    Scene,
    THIIMSolver,
    absorbed_power,
    poynting_flux_z,
)


def main() -> None:
    # -- 1. physics: a slab of amorphous silicon under plane-wave light ----
    grid = Grid(nz=64, ny=12, nx=12, periodic=(False, True, True))
    wavelength = 16.0  # grid cells; omega = 2 pi / lambda in c=1 units
    omega = 2 * np.pi / wavelength

    scene = Scene().add_layer(A_SI_H, z_low=32, z_high=52)
    solver = THIIMSolver(
        grid,
        omega,
        scene=scene,
        source=PlaneWaveSource(z_plane=14, amplitude=1.0, z_width=2.0),
        pml={"z": PMLSpec(thickness=10)},
    )

    print(f"grid {grid.shape}, tau = {solver.tau:.4f}, "
          f"state = {grid.memory_bytes() / 2**20:.1f} MiB (640 B/cell)")

    result = solver.solve(tol=1e-5, max_steps=3000, check_every=100)
    print(f"converged = {result.converged} after {result.iterations} steps "
          f"(residual {result.residual:.2e})")

    mask = solver.material_mask("a-Si:H")
    absorbed = absorbed_power(solver.fields, solver.sigma, mask=mask)
    incident = poynting_flux_z(solver.fields, 20)
    print(f"power into the stack:   {incident:9.4f}")
    print(f"absorbed in a-Si layer: {absorbed:9.4f} "
          f"({100 * absorbed / incident:.1f}% of incident)")

    # -- 2. tiling: the same physics through the MWD traversal --------------
    # Diamond tiling needs non-periodic y/z (the paper's benchmark uses
    # homogeneous Dirichlet boundaries for exactly this reason), so the
    # demo runs the stack in a closed box.
    steps = 40
    box = Grid(nz=64, ny=12, nx=12)
    reference = THIIMSolver(
        box, omega, scene=scene,
        source=PlaneWaveSource(z_plane=14, amplitude=1.0, z_width=2.0),
        pml={"z": PMLSpec(thickness=10)},
    )
    tiled = THIIMSolver(
        box, omega, scene=scene,
        source=PlaneWaveSource(z_plane=14, amplitude=1.0, z_width=2.0),
        pml={"z": PMLSpec(thickness=10)},
    )
    reference.run(steps)

    plan = TilingPlan.build(ny=box.ny, nz=box.nz, timesteps=steps, dw=4, bz=3)
    print(f"\n{plan.describe()}")
    executor = TiledExecutor(tiled.fields, tiled.coefficients, plan)
    executor.run_interleaved(np.random.default_rng(0))  # any DAG order works

    diff = reference.fields.max_abs_difference(tiled.fields)
    print(f"tiled vs naive max |diff| = {diff:.1e}  "
          f"({executor.jobs_done} row jobs, {executor.lups_done} cell updates)")
    assert diff == 0.0, "tiled execution must equal the naive sweep"
    print("OK: wavefront-diamond execution is exact.")


if __name__ == "__main__":
    main()
