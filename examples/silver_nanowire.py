#!/usr/bin/env python3
"""Plasmonics example: light scattering off a silver nano-wire.

THIIM was validated on exactly this class of problem (the paper cites
its use for "the simulation of plasmonic effects, e.g. around silver
nano wires").  A thin silver cylinder runs along x,
illuminated from above by a plane wave.  The metal cells take the back iteration, and
the field enhancement at the wire surface -- the plasmonic signature --
is reported.

Run:  python examples/silver_nanowire.py
"""

import numpy as np

from repro.fdfd import (
    SILVER,
    Grid,
    PMLSpec,
    PlaneWaveSource,
    Scene,
    THIIMSolver,
)


def build_wire_scene(grid: Grid, z0: float, y0: float, radius: float) -> Scene:
    """A cylinder along x, approximated by overlapping spheres (the
    rasterizer supports spheres; at one-cell pitch the union is an exact
    cylinder on the grid)."""
    scene = Scene()
    for cx in np.arange(-radius, grid.nx + radius, 1.0):
        scene.add_sphere(SILVER, center=(z0, y0, float(cx)), radius=radius)
    return scene


def main() -> None:
    grid = Grid(nz=64, ny=48, nx=8, periodic=(False, False, True))
    wavelength = 14.0
    omega = 2 * np.pi / wavelength

    z_wire, y_wire, radius = 40.0, 24.0, 3.0
    scene = build_wire_scene(grid, z_wire, y_wire, radius)

    solver = THIIMSolver(
        grid,
        omega,
        scene=scene,
        source=PlaneWaveSource(z_plane=12, amplitude=1.0, z_width=2.0),
        pml={"z": PMLSpec(thickness=10), "y": PMLSpec(thickness=8)},
    )

    n_metal = int(np.sum(solver.eps < 0))
    print(f"silver cells: {n_metal} ({100 * n_metal / grid.n_cells:.1f}% of grid), "
          f"eps(Ag) = {SILVER.eps_real:.2f} < 0 -> back iteration")

    result = solver.solve(tol=2e-5, max_steps=3000, check_every=100)
    if result.converged:
        print(f"THIIM converged after {result.iterations} steps "
              f"(residual {result.residual:.2e})")
    else:
        # The wire supports a high-Q scattering resonance: the iterate
        # reaches a bounded quasi-steady beat instead of a fixed point
        # (residual ~1e-3).  Averaging a few snapshots over the beat
        # gives stable observables.
        print(f"THIIM reached a bounded quasi-steady state after "
              f"{result.iterations} steps (residual {result.residual:.2e}; "
              f"high-Q wire resonance)")

    # Cycle-averaged |E| over a few snapshots.
    acc = None
    snaps = 5
    for _ in range(snaps):
        solver.run(120)
        ex = np.abs(solver.fields.combined("Ex"))
        ey = np.abs(solver.fields.combined("Ey"))
        ez = np.abs(solver.fields.combined("Ez"))
        mag = np.sqrt(ex**2 + ey**2 + ez**2)
        acc = mag if acc is None else acc + mag
    e_mag = acc / snaps

    # Field enhancement: surface vs incident (sampled above the wire).
    incident = float(e_mag[20, 18:30, :].mean())
    zz, yy = np.meshgrid(np.arange(grid.nz) + 0.5, np.arange(grid.ny) + 0.5, indexing="ij")
    rr = np.sqrt((zz - z_wire) ** 2 + (yy - y_wire) ** 2)
    shell = (rr > radius) & (rr < radius + 1.5)
    surface = float(e_mag.mean(axis=2)[shell].max())
    inside = float(e_mag.mean(axis=2)[rr < radius - 1].mean())

    print(f"|E| incident       : {incident:.4f}")
    print(f"|E| wire surface   : {surface:.4f}  (enhancement x{surface / incident:.2f})")
    print(f"|E| inside the wire: {inside:.4f}  (screened x{incident / max(inside, 1e-12):.1f})")

    assert np.isfinite(surface) and inside < incident, "metal must screen the interior"
    if surface > 1.2 * incident:
        print("plasmonic field enhancement at the metal surface: reproduced")
    else:
        print("note: enhancement is modest at this resolution/wavelength")


if __name__ == "__main__":
    main()
