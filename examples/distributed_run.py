#!/usr/bin/env python3
"""Distributed-memory THIIM over simulated ranks (Section VI geometry).

Decomposes a solar-cell solve over a Cartesian process grid, runs the
halo-exchanged solver, verifies bit-exactness against the single-domain
sweep, and reports the communication profile -- including the paper's
Section VI argument in numbers: the x-face halos are the expensive ones,
and a thin domain mapped to x avoids decomposing it entirely.

Run:  python examples/distributed_run.py
"""

import numpy as np

from repro.cluster import CommCostModel, DistributedTHIIM, RankLayout, choose_decomposition
from repro.fdfd import (
    A_SI_H,
    Grid,
    PMLSpec,
    PlaneWaveSource,
    Scene,
    THIIMSolver,
    naive_sweep,
)


def main() -> None:
    grid = Grid(nz=48, ny=16, nx=12)
    omega = 2 * np.pi / 12.0
    scene = Scene().add_layer(A_SI_H, 24, 40)
    solver = THIIMSolver(
        grid, omega, scene=scene,
        source=PlaneWaveSource(z_plane=10, z_width=2.0),
        pml={"z": PMLSpec(thickness=8)},
    )

    # -- choose a decomposition ------------------------------------------------
    n_ranks = 8
    layout = choose_decomposition(grid, n_ranks)
    print(f"decomposition of {grid.shape} over {n_ranks} ranks: "
          f"(pz, py, px) = {layout.dims}")
    cost = CommCostModel()
    print(f"  worst-rank halo cost per half step: {cost.step_cost_us(layout):.1f} us, "
          f"surface/volume = {cost.surface_to_volume(layout):.3f}")

    # -- run distributed and verify against the global sweep --------------------
    steps = 30
    reference = solver.fields.copy()
    naive_sweep(reference, solver.coefficients, steps)

    dist = DistributedTHIIM(layout, solver.fields, solver.coefficients)
    dist.step(steps)
    gathered = dist.gather()
    diff = reference.max_abs_difference(gathered)
    print(f"\ndistributed vs single-domain after {steps} steps: "
          f"max |diff| = {diff:.1e}")
    assert diff == 0.0, "halo exchange must reproduce the global sweep exactly"
    print("OK: halo-exchanged run is bit-exact.")

    mb = dist.stats.bytes_total / 2**20
    print(f"halo traffic: {dist.stats.messages} messages, {mb:.2f} MiB total "
          f"({dist.halo_bytes_per_step() / 2**10:.1f} KiB/step)")
    for axis, label in ((0, "z (contiguous)"), (1, "y (row-strided)"), (2, "x (element-strided)")):
        print(f"  axis {label:22s}: {dist.stats.bytes_by_axis[axis] / 2**10:9.1f} KiB")

    # -- the thin-domain argument -----------------------------------------------
    print("\nthin-domain decomposition (Section VI):")
    thin_on_x = Grid(nz=128, ny=128, nx=16)
    thin_on_z = Grid(nz=16, ny=128, nx=128)
    for label, g in (("thin dim -> x", thin_on_x), ("thin dim -> z", thin_on_z)):
        lay = choose_decomposition(g, 16)
        print(f"  {label}: dims={lay.dims}, halo cost "
              f"{cost.step_cost_us(lay):.1f} us/half-step, "
              f"S/V={cost.surface_to_volume(lay):.3f}")
    print("mapping the thin dimension to the leading (x) axis keeps it "
          "undecomposed -- no strided halos -- as the paper recommends.")


if __name__ == "__main__":
    main()
