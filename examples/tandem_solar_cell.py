#!/usr/bin/env python3
"""The paper's motivating workload (Fig. 1): a tandem thin-film solar
cell with textured interfaces and SiO2 nano-particle scatterers on the
silver back contact.

Builds the full layer stack -- glass superstrate, ZnO front electrode,
amorphous-silicon top cell, microcrystalline-silicon bottom cell,
ZnO buffer, silver back contact with embedded SiO2 spheres -- with
etched (rough) interfaces for light trapping, and iterates THIIM to the
time-harmonic state.  Reports the per-layer absorption balance, the
quantity a photovoltaic optimization loop maximizes.

The silver layer has negative real permittivity; those cells take the
THIIM back iteration automatically (Eq. 5 of the paper) -- no auxiliary
differential equations needed.

Run:  python examples/tandem_solar_cell.py          (about a minute)
"""

import numpy as np

from repro.fdfd import (
    A_SI_H,
    GLASS,
    SILVER,
    SIO2,
    TCO_ZNO,
    UC_SI_H,
    Grid,
    PMLSpec,
    PlaneWaveSource,
    Scene,
    THIIMSolver,
    absorbed_power,
    poynting_flux_z,
    rough_texture,
)


def build_cell(nz: int) -> Scene:
    """The Fig. 1 stack, top (low z) to bottom (high z), in grid cells."""
    scene = Scene(background=GLASS)
    etch_a = rough_texture(amplitude=1.5, correlation=6, seed=11)
    etch_b = rough_texture(amplitude=2.0, correlation=8, seed=23)
    scene.add_layer(TCO_ZNO, 24, 30)                      # front electrode
    scene.add_layer(A_SI_H, 30, 36, texture=etch_a)       # top absorber (thin)
    scene.add_layer(UC_SI_H, 36, 66, texture=etch_b)      # bottom absorber
    scene.add_layer(TCO_ZNO, 66, 70)                      # buffer
    scene.add_layer(SILVER, 70, nz)                       # back contact
    # SiO2 nano-particles at the Ag interface for extra scattering.
    rng = np.random.default_rng(7)
    for _ in range(4):
        cy, cx = rng.uniform(4, 20, size=2)
        scene.add_sphere(SIO2, center=(70.0, float(cy), float(cx)), radius=2.5)
    return scene


def main() -> None:
    grid = Grid(nz=96, ny=24, nx=24, periodic=(False, True, True))
    wavelength = 18.0
    omega = 2 * np.pi / wavelength
    scene = build_cell(grid.nz)

    solver = THIIMSolver(
        grid,
        omega,
        scene=scene,
        source=PlaneWaveSource(z_plane=14, amplitude=1.0, z_width=2.0),
        pml={"z": PMLSpec(thickness=10)},
        supersample=1,
    )
    print("material volume fractions:")
    for name, frac in sorted(scene.material_volume_fractions(grid).items()):
        print(f"  {name:10s} {100 * frac:5.1f}%")
    assert solver.coefficients.back_mask is not None, "Ag must trigger back iteration"
    n_back = int(np.sum(solver.coefficients.back_mask))
    print(f"back-iteration cells (Re eps < 0): {n_back} "
          f"({100 * n_back / grid.n_cells:.1f}% of the grid)")

    result = solver.solve(tol=1e-4, max_steps=4000, check_every=100)
    print(f"\nTHIIM: {'converged' if result.converged else 'NOT converged'} "
          f"after {result.iterations} steps (residual {result.residual:.2e})")

    incident = poynting_flux_z(solver.fields, 18)
    print(f"\nincident power (below source): {incident:.4f}")
    print(f"{'layer':12s} {'absorbed':>10s} {'share':>7s}")
    total = 0.0
    for name in ("ZnO", "a-Si:H", "uc-Si:H", "Ag"):
        mask = solver.material_mask(name)
        p = absorbed_power(solver.fields, solver.sigma, mask=mask)
        total += p
        print(f"{name:12s} {p:10.4f} {100 * p / incident:6.1f}%")
    print(f"{'total':12s} {total:10.4f} {100 * total / incident:6.1f}%")

    useful = sum(
        absorbed_power(solver.fields, solver.sigma, mask=solver.material_mask(n))
        for n in ("a-Si:H", "uc-Si:H")
    )
    print(f"\nuseful (photocurrent) fraction of absorbed power: "
          f"{100 * useful / total:.1f}%")
    print("(parasitic absorption in ZnO and Ag is what texture/particle "
          "optimization sweeps try to minimize -- each sweep point is one "
          "of the thousands of runs the paper's optimization accelerates)")


if __name__ == "__main__":
    main()
